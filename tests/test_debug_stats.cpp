// Tests for the per-thread event counters (src/util/debug_stats.h).
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "util/debug_stats.h"

namespace smr {
namespace {

TEST(DebugStats, StartsAtZero) {
    debug_stats s;
    for (int i = 0; i < static_cast<int>(stat::COUNT); ++i) {
        EXPECT_EQ(s.total(static_cast<stat>(i)), 0u);
    }
}

TEST(DebugStats, AddAndGetPerThread) {
    debug_stats s;
    s.add(0, stat::records_retired);
    s.add(0, stat::records_retired);
    s.add(1, stat::records_retired, 5);
    EXPECT_EQ(s.get(0, stat::records_retired), 2u);
    EXPECT_EQ(s.get(1, stat::records_retired), 5u);
    EXPECT_EQ(s.get(2, stat::records_retired), 0u);
    EXPECT_EQ(s.total(stat::records_retired), 7u);
}

TEST(DebugStats, CountersAreIndependent) {
    debug_stats s;
    s.add(3, stat::hp_scans, 10);
    EXPECT_EQ(s.total(stat::hp_scans), 10u);
    EXPECT_EQ(s.total(stat::epochs_advanced), 0u);
}

TEST(DebugStats, ClearResetsEverything) {
    debug_stats s;
    for (int t = 0; t < 8; ++t) {
        for (int i = 0; i < static_cast<int>(stat::COUNT); ++i) {
            s.add(t, static_cast<stat>(i), static_cast<std::uint64_t>(i + t));
        }
    }
    s.clear();
    for (int i = 0; i < static_cast<int>(stat::COUNT); ++i) {
        EXPECT_EQ(s.total(static_cast<stat>(i)), 0u);
    }
}

TEST(DebugStats, NamesCoverEveryStat) {
    EXPECT_EQ(stat_names.size(),
              static_cast<std::size_t>(static_cast<int>(stat::COUNT)));
    for (const auto& n : stat_names) EXPECT_FALSE(n.empty());
}

TEST(DebugStats, ConcurrentWritersOnDistinctTids) {
    debug_stats s;
    constexpr int N = 8;
    constexpr int ITERS = 10000;
    std::vector<std::thread> threads;
    for (int t = 0; t < N; ++t) {
        threads.emplace_back([&s, t] {
            for (int i = 0; i < ITERS; ++i) s.add(t, stat::records_allocated);
        });
    }
    for (auto& th : threads) th.join();
    EXPECT_EQ(s.total(stat::records_allocated),
              static_cast<std::uint64_t>(N) * ITERS);
}

// Counter-integrity stress (concurrency-audit satellite): many writers --
// including several sharing one tid slot, the hardest case for a torn or
// plain-increment implementation -- race a live harvester calling total(),
// and the post-join harvest must equal ground truth exactly. A debug_stats
// that bumped its cells with non-atomic increments would fail this count
// under load and be flagged by TSan; the relaxed fetch_add contract is
// exactly what this pins.
TEST(DebugStats, HarvestEqualsGroundTruthUnderContention) {
#ifdef SMR_TSAN
    constexpr int WRITERS = 4;
    constexpr int ITERS = 20000;
#else
    constexpr int WRITERS = 8;
    constexpr int ITERS = 200000;
#endif
    debug_stats s;
    std::vector<std::thread> threads;
    // Writers 0 and 1 share tid slot 0: add() must be atomic, not just
    // single-writer-safe, for the total to come out exact.
    for (int w = 0; w < WRITERS; ++w) {
        const int tid = (w < 2) ? 0 : w;
        threads.emplace_back([&s, tid] {
            for (int i = 0; i < ITERS; ++i) {
                s.add(tid, stat::records_retired);
                if ((i & 7) == 0) s.add(tid, stat::records_pooled, 3);
            }
        });
    }
    // A live harvester: total() while writers run must be TSan-clean (it
    // may observe any intermediate value; only the final sum is asserted).
    std::thread harvester([&s] {
        std::uint64_t last = 0;
        for (int i = 0; i < 200; ++i) {
            const std::uint64_t now = s.total(stat::records_retired);
            EXPECT_GE(now, last) << "monotone while writers only add";
            last = now;
        }
    });
    for (auto& th : threads) th.join();
    harvester.join();
    const auto expected_retired =
        static_cast<std::uint64_t>(WRITERS) * ITERS;
    const auto expected_pooled =
        static_cast<std::uint64_t>(WRITERS) * ((ITERS + 7) / 8) * 3;
    EXPECT_EQ(s.total(stat::records_retired), expected_retired);
    EXPECT_EQ(s.total(stat::records_pooled), expected_pooled);
}

// The stall matrix is single-writer-per-tid by contract; distinct tids
// recording concurrently while a reader merges summaries must be clean and
// lose no events (the histogram count doubles as the event counter).
TEST(DebugStats, StallMatrixConcurrentRecordAndMerge) {
    debug_stats s;
    constexpr int N = 4;
    constexpr int EVENTS = 5000;
    std::vector<std::thread> threads;
    for (int t = 0; t < N; ++t) {
        threads.emplace_back([&s, t] {
            for (int i = 0; i < EVENTS; ++i) {
                s.stall(t, stall_site::rotation,
                        static_cast<std::uint64_t>(100 + i % 1000));
            }
        });
    }
    std::thread reader([&s] {
        for (int i = 0; i < 100; ++i) {
            (void)s.stall_summary(stall_site::rotation);
        }
    });
    for (auto& th : threads) th.join();
    reader.join();
    EXPECT_EQ(s.stall_summary(stall_site::rotation).count,
              static_cast<std::uint64_t>(N) * EVENTS);
}

TEST(DebugStats, MaxThreadsBound) {
    debug_stats s;
    s.add(MAX_THREADS - 1, stat::rotations);
    EXPECT_EQ(s.get(MAX_THREADS - 1, stat::rotations), 1u);
    EXPECT_EQ(s.total(stat::rotations), 1u);
}

}  // namespace
}  // namespace smr
