// Tests for the per-thread event counters (src/util/debug_stats.h).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "util/debug_stats.h"

namespace smr {
namespace {

TEST(DebugStats, StartsAtZero) {
    debug_stats s;
    for (int i = 0; i < static_cast<int>(stat::COUNT); ++i) {
        EXPECT_EQ(s.total(static_cast<stat>(i)), 0u);
    }
}

TEST(DebugStats, AddAndGetPerThread) {
    debug_stats s;
    s.add(0, stat::records_retired);
    s.add(0, stat::records_retired);
    s.add(1, stat::records_retired, 5);
    EXPECT_EQ(s.get(0, stat::records_retired), 2u);
    EXPECT_EQ(s.get(1, stat::records_retired), 5u);
    EXPECT_EQ(s.get(2, stat::records_retired), 0u);
    EXPECT_EQ(s.total(stat::records_retired), 7u);
}

TEST(DebugStats, CountersAreIndependent) {
    debug_stats s;
    s.add(3, stat::hp_scans, 10);
    EXPECT_EQ(s.total(stat::hp_scans), 10u);
    EXPECT_EQ(s.total(stat::epochs_advanced), 0u);
}

TEST(DebugStats, ClearResetsEverything) {
    debug_stats s;
    for (int t = 0; t < 8; ++t) {
        for (int i = 0; i < static_cast<int>(stat::COUNT); ++i) {
            s.add(t, static_cast<stat>(i), static_cast<std::uint64_t>(i + t));
        }
    }
    s.clear();
    for (int i = 0; i < static_cast<int>(stat::COUNT); ++i) {
        EXPECT_EQ(s.total(static_cast<stat>(i)), 0u);
    }
}

TEST(DebugStats, NamesCoverEveryStat) {
    EXPECT_EQ(stat_names.size(),
              static_cast<std::size_t>(static_cast<int>(stat::COUNT)));
    for (const auto& n : stat_names) EXPECT_FALSE(n.empty());
}

TEST(DebugStats, ConcurrentWritersOnDistinctTids) {
    debug_stats s;
    constexpr int N = 8;
    constexpr int ITERS = 10000;
    std::vector<std::thread> threads;
    for (int t = 0; t < N; ++t) {
        threads.emplace_back([&s, t] {
            for (int i = 0; i < ITERS; ++i) s.add(t, stat::records_allocated);
        });
    }
    for (auto& th : threads) th.join();
    EXPECT_EQ(s.total(stat::records_allocated),
              static_cast<std::uint64_t>(N) * ITERS);
}

// Counter-integrity stress (concurrency-audit satellite): many writers --
// including several sharing one tid slot, the hardest case for a torn or
// plain-increment implementation -- race a live harvester calling total(),
// and the post-join harvest must equal ground truth exactly. A debug_stats
// that bumped its cells with non-atomic increments would fail this count
// under load and be flagged by TSan; the relaxed fetch_add contract is
// exactly what this pins.
TEST(DebugStats, HarvestEqualsGroundTruthUnderContention) {
#ifdef SMR_TSAN
    constexpr int WRITERS = 4;
    constexpr int ITERS = 20000;
#else
    constexpr int WRITERS = 8;
    constexpr int ITERS = 200000;
#endif
    debug_stats s;
    std::vector<std::thread> threads;
    // Writers 0 and 1 share tid slot 0: add() must be atomic, not just
    // single-writer-safe, for the total to come out exact.
    for (int w = 0; w < WRITERS; ++w) {
        const int tid = (w < 2) ? 0 : w;
        threads.emplace_back([&s, tid] {
            for (int i = 0; i < ITERS; ++i) {
                s.add(tid, stat::records_retired);
                if ((i & 7) == 0) s.add(tid, stat::records_pooled, 3);
            }
        });
    }
    // A live harvester: total() while writers run must be TSan-clean (it
    // may observe any intermediate value; only the final sum is asserted).
    std::thread harvester([&s] {
        std::uint64_t last = 0;
        for (int i = 0; i < 200; ++i) {
            const std::uint64_t now = s.total(stat::records_retired);
            EXPECT_GE(now, last) << "monotone while writers only add";
            last = now;
        }
    });
    for (auto& th : threads) th.join();
    harvester.join();
    const auto expected_retired =
        static_cast<std::uint64_t>(WRITERS) * ITERS;
    const auto expected_pooled =
        static_cast<std::uint64_t>(WRITERS) * ((ITERS + 7) / 8) * 3;
    EXPECT_EQ(s.total(stat::records_retired), expected_retired);
    EXPECT_EQ(s.total(stat::records_pooled), expected_pooled);
}

// The stall matrix is single-writer-per-tid by contract; distinct tids
// recording concurrently while a reader merges summaries must be clean and
// lose no events (the histogram count doubles as the event counter).
TEST(DebugStats, StallMatrixConcurrentRecordAndMerge) {
    debug_stats s;
    constexpr int N = 4;
    constexpr int EVENTS = 5000;
    std::vector<std::thread> threads;
    for (int t = 0; t < N; ++t) {
        threads.emplace_back([&s, t] {
            for (int i = 0; i < EVENTS; ++i) {
                s.stall(t, stall_site::rotation,
                        static_cast<std::uint64_t>(100 + i % 1000));
            }
        });
    }
    std::thread reader([&s] {
        for (int i = 0; i < 100; ++i) {
            (void)s.stall_summary(stall_site::rotation);
        }
    });
    for (auto& th : threads) th.join();
    reader.join();
    EXPECT_EQ(s.stall_summary(stall_site::rotation).count,
              static_cast<std::uint64_t>(N) * EVENTS);
}

// Harvest under registration churn (the serve soak's shape): workers run
// in waves, each wave ending with the thread "deregistering" (exiting) and
// a successor inheriting its tid slot. The snapshot streamer computes
// per-snapshot deltas of total() while waves come and go; its correctness
// contract is that cells persist across deregistration, so (a) a live
// harvester never observes total() move backwards -- a decrease would mean
// a departing thread's contribution was lost -- and (b) the final harvest
// equals ground truth exactly: nothing lost, nothing double-counted.
TEST(DebugStats, HarvestStableAcrossRegistrationChurn) {
#ifdef SMR_TSAN
    constexpr int WAVES = 6;
    constexpr int ITERS = 5000;
#else
    constexpr int WAVES = 12;
    constexpr int ITERS = 50000;
#endif
    constexpr int TIDS = 3;
    debug_stats s;
    std::atomic<bool> done{false};

    // The streamer stand-in: snapshot deltas over the live matrix.
    std::vector<std::uint64_t> deltas;
    std::thread harvester([&] {
        std::uint64_t last = 0;
        while (!done.load(std::memory_order_acquire)) {
            const std::uint64_t now = s.total(stat::records_retired);
            EXPECT_GE(now, last)
                << "a deregistered thread's counters vanished mid-soak";
            deltas.push_back(now - last);
            last = now;
            std::this_thread::yield();
        }
    });

    // Waves: every tid slot is owned by WAVES successive short-lived
    // threads, mimicking serve-mode churn (deregister, then a re-register
    // inheriting the slot).
    for (int wave = 0; wave < WAVES; ++wave) {
        std::vector<std::thread> workers;
        for (int t = 0; t < TIDS; ++t) {
            workers.emplace_back([&s, t] {
                for (int i = 0; i < ITERS; ++i) {
                    s.add(t, stat::records_retired);
                }
            });
        }
        for (auto& w : workers) w.join();
    }
    done.store(true, std::memory_order_release);
    harvester.join();

    const auto expected =
        static_cast<std::uint64_t>(WAVES) * TIDS * ITERS;
    EXPECT_EQ(s.total(stat::records_retired), expected);
    // The deltas the streamer would have written tile the observed range
    // with no overlap: their sum reconstructs the last harvested total (a
    // double-counted cell would overshoot), and one final stop()-style
    // snapshot extends the tiling to exactly the ground truth.
    std::uint64_t recovered = 0;
    for (const std::uint64_t d : deltas) recovered += d;
    EXPECT_LE(recovered, expected);
    const std::uint64_t final_delta =
        s.total(stat::records_retired) - recovered;
    EXPECT_EQ(recovered + final_delta, expected);
}

TEST(DebugStats, MaxThreadsBound) {
    debug_stats s;
    s.add(MAX_THREADS - 1, stat::rotations);
    EXPECT_EQ(s.get(MAX_THREADS - 1, stat::rotations), 1u);
    EXPECT_EQ(s.total(stat::rotations), 1u);
}

}  // namespace
}  // namespace smr
