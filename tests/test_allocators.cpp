// Tests for the Allocator policies (src/alloc/).
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "alloc/allocator_bump.h"
#include "alloc/allocator_new.h"
#include "util/debug_stats.h"

namespace smr::alloc {
namespace {

struct rec {
    long a;
    long b;
};

TEST(AllocatorNew, AllocateGivesAlignedDistinctStorage) {
    debug_stats stats;
    allocator_new<rec> alloc(2, &stats);
    std::set<rec*> seen;
    for (int i = 0; i < 100; ++i) {
        rec* p = alloc.allocate(0);
        ASSERT_NE(p, nullptr);
        EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % alignof(rec), 0u);
        EXPECT_TRUE(seen.insert(p).second);
    }
    for (rec* p : seen) alloc.deallocate(0, p);
    EXPECT_EQ(stats.total(stat::records_allocated), 100u);
    EXPECT_EQ(stats.total(stat::records_freed), 100u);
}

TEST(AllocatorNew, BytesInUseTracksLiveRecords) {
    debug_stats stats;
    allocator_new<rec> alloc(1, &stats);
    rec* a = alloc.allocate(0);
    rec* b = alloc.allocate(0);
    EXPECT_EQ(alloc.bytes_in_use(stats),
              static_cast<long long>(2 * sizeof(rec)));
    alloc.deallocate(0, a);
    EXPECT_EQ(alloc.bytes_in_use(stats), static_cast<long long>(sizeof(rec)));
    alloc.deallocate(0, b);
    EXPECT_EQ(alloc.bytes_in_use(stats), 0);
}

TEST(AllocatorBump, AllocateGivesDistinctWritableStorage) {
    debug_stats stats;
    allocator_bump<rec> alloc(2, &stats);
    std::set<rec*> seen;
    for (int i = 0; i < 1000; ++i) {
        rec* p = alloc.allocate(0);
        ASSERT_NE(p, nullptr);
        p->a = i;  // must be writable
        p->b = -i;
        EXPECT_TRUE(seen.insert(p).second);
    }
}

TEST(AllocatorBump, FreeListReusesStorage) {
    debug_stats stats;
    allocator_bump<rec> alloc(1, &stats);
    rec* a = alloc.allocate(0);
    const long long bumped_before = alloc.bumped_bytes(0);
    alloc.deallocate(0, a);
    rec* b = alloc.allocate(0);
    EXPECT_EQ(b, a);  // LIFO free list returns the same slot
    EXPECT_EQ(alloc.bumped_bytes(0), bumped_before);  // no new bump
    EXPECT_EQ(stats.total(stat::records_reused), 1u);
}

TEST(AllocatorBump, BumpedBytesIsTheFigure9Metric) {
    debug_stats stats;
    allocator_bump<rec> alloc(2, &stats);
    EXPECT_EQ(alloc.total_bumped_bytes(), 0);
    for (int i = 0; i < 10; ++i) alloc.allocate(0);
    for (int i = 0; i < 5; ++i) alloc.allocate(1);
    const long long per_thread0 = alloc.bumped_bytes(0);
    const long long per_thread1 = alloc.bumped_bytes(1);
    EXPECT_GT(per_thread0, 0);
    EXPECT_GT(per_thread1, 0);
    EXPECT_EQ(alloc.total_bumped_bytes(), per_thread0 + per_thread1);
    // Reuse does not move the bump pointer.
    rec* p = alloc.allocate(0);
    alloc.deallocate(0, p);
    const long long before = alloc.total_bumped_bytes();
    alloc.allocate(0);
    EXPECT_EQ(alloc.total_bumped_bytes(), before);
}

TEST(AllocatorBump, PerThreadArenasAreIndependent) {
    debug_stats stats;
    allocator_bump<rec> alloc(2, &stats);
    rec* a = alloc.allocate(0);
    rec* b = alloc.allocate(1);
    EXPECT_NE(a, b);
    alloc.deallocate(0, a);
    // Thread 1's free list is untouched by thread 0's deallocate.
    rec* c = alloc.allocate(1);
    EXPECT_NE(c, a);
}

TEST(AllocatorBump, SurvivesChunkBoundaries) {
    debug_stats stats;
    allocator_bump<rec> alloc(1, &stats);
    // Allocate more than one chunk's worth of records.
    const std::size_t per_chunk = allocator_bump<rec>::CHUNK_BYTES / sizeof(rec);
    std::set<rec*> seen;
    for (std::size_t i = 0; i < per_chunk + 100; ++i) {
        rec* p = alloc.allocate(0);
        p->a = static_cast<long>(i);
        EXPECT_TRUE(seen.insert(p).second);
    }
    EXPECT_EQ(seen.size(), per_chunk + 100);
}

TEST(AllocatorBump, ConcurrentPerThreadAllocation) {
    debug_stats stats;
    constexpr int N = 4;
    allocator_bump<rec> alloc(N, &stats);
    std::vector<std::thread> threads;
    std::vector<std::vector<rec*>> out(N);
    for (int t = 0; t < N; ++t) {
        threads.emplace_back([&, t] {
            for (int i = 0; i < 5000; ++i) {
                rec* p = alloc.allocate(t);
                p->a = t;
                out[static_cast<std::size_t>(t)].push_back(p);
            }
        });
    }
    for (auto& th : threads) th.join();
    std::set<rec*> all;
    for (auto& v : out) {
        for (rec* p : v) {
            EXPECT_TRUE(all.insert(p).second);
            EXPECT_EQ(p->a, &v - &out[0]);
        }
    }
    EXPECT_EQ(all.size(), static_cast<std::size_t>(N) * 5000);
}

TEST(AllocatorBump, SmallRecordsStillFitFreeListNode) {
    struct tiny {
        char c;
    };
    debug_stats stats;
    allocator_bump<tiny> alloc(1, &stats);
    tiny* a = alloc.allocate(0);
    alloc.deallocate(0, a);
    tiny* b = alloc.allocate(0);
    EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace smr::alloc
