// Tests for the block-structured bag (src/mem/blockbag.h), including the
// head-block invariant and the DEBRA+ partition/iteration support.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "mem/block_pool.h"
#include "mem/blockbag.h"

namespace smr::mem {
namespace {

struct rec {
    long v;
};

class BlockbagTest : public ::testing::Test {
  protected:
    static constexpr int B = 4;  // small blocks make invariants easy to hit
    block_pool<rec, B> pool_{64, nullptr, 0};

    std::vector<rec> make_recs(int n) {
        std::vector<rec> v(static_cast<std::size_t>(n));
        for (int i = 0; i < n; ++i) v[static_cast<std::size_t>(i)].v = i;
        return v;
    }
};

TEST_F(BlockbagTest, StartsEmpty) {
    blockbag<rec, B> bag(pool_);
    EXPECT_TRUE(bag.empty());
    EXPECT_EQ(bag.size(), 0);
    EXPECT_EQ(bag.size_in_blocks(), 1);  // the (empty) head block
    EXPECT_EQ(bag.remove(), nullptr);
}

TEST_F(BlockbagTest, AddRemoveSingle) {
    blockbag<rec, B> bag(pool_);
    rec r{7};
    bag.add(&r);
    EXPECT_FALSE(bag.empty());
    EXPECT_EQ(bag.size(), 1);
    EXPECT_EQ(bag.remove(), &r);
    EXPECT_TRUE(bag.empty());
}

TEST_F(BlockbagTest, SizeTracksManyAdds) {
    blockbag<rec, B> bag(pool_);
    auto recs = make_recs(100);
    for (auto& r : recs) bag.add(&r);
    EXPECT_EQ(bag.size(), 100);
    long long removed = 0;
    while (bag.remove() != nullptr) ++removed;
    EXPECT_EQ(removed, 100);
}

TEST_F(BlockbagTest, HeadBlockInvariant) {
    // The head block is always non-full; subsequent blocks are always full.
    blockbag<rec, B> bag(pool_);
    auto recs = make_recs(3 * B);
    for (int i = 0; i < 3 * B; ++i) {
        bag.add(&recs[static_cast<std::size_t>(i)]);
        // size() must be consistent with the block invariant:
        // (blocks-1)*B + head_size where head_size in [0, B).
        const long long sz = bag.size();
        const int blocks = bag.size_in_blocks();
        EXPECT_EQ(sz, i + 1);
        EXPECT_GE(sz, static_cast<long long>(blocks - 1) * B);
        EXPECT_LT(sz - static_cast<long long>(blocks - 1) * B, B);
    }
}

TEST_F(BlockbagTest, RemoveReturnsEveryAddedRecordOnce) {
    blockbag<rec, B> bag(pool_);
    auto recs = make_recs(37);
    std::set<rec*> expected;
    for (auto& r : recs) {
        bag.add(&r);
        expected.insert(&r);
    }
    std::set<rec*> got;
    while (rec* p = bag.remove()) EXPECT_TRUE(got.insert(p).second);
    EXPECT_EQ(got, expected);
}

TEST_F(BlockbagTest, TakeFullBlocksLeavesHead) {
    blockbag<rec, B> bag(pool_);
    auto recs = make_recs(3 * B + 2);
    for (auto& r : recs) bag.add(&r);
    EXPECT_EQ(bag.size_in_blocks(), 4);
    auto chain = bag.take_full_blocks();
    EXPECT_EQ(chain.count, 3);
    EXPECT_EQ(bag.size_in_blocks(), 1);
    EXPECT_EQ(bag.size(), 2);  // leftovers in the head block
    // Chain holds the other 3*B records, all full blocks.
    int chained = 0;
    for (auto* b = chain.head; b != nullptr; b = b->next_relaxed()) {
        EXPECT_TRUE(b->full());
        chained += b->size;
        if (b->next_relaxed() == nullptr) { EXPECT_EQ(b, chain.tail); }
    }
    EXPECT_EQ(chained, 3 * B);
    // Return blocks to the pool to avoid leaking them.
    for (auto* b = chain.head; b != nullptr;) {
        auto* next = b->next_relaxed();
        b->size = 0;
        pool_.release(b);
        b = next;
    }
}

TEST_F(BlockbagTest, TakeFullBlocksOnEmptyBag) {
    blockbag<rec, B> bag(pool_);
    auto chain = bag.take_full_blocks();
    EXPECT_TRUE(chain.empty());
    EXPECT_EQ(chain.count, 0);
}

TEST_F(BlockbagTest, AddAndPopFullBlock) {
    blockbag<rec, B> bag(pool_);
    auto recs = make_recs(B);
    auto* blk = pool_.acquire();
    for (auto& r : recs) blk->push(&r);
    EXPECT_TRUE(blk->full());
    bag.add_full_block(blk);
    EXPECT_EQ(bag.size(), B);
    EXPECT_EQ(bag.size_in_blocks(), 2);
    auto* popped = bag.pop_full_block();
    EXPECT_EQ(popped, blk);
    EXPECT_EQ(bag.size(), 0);
    EXPECT_EQ(bag.pop_full_block(), nullptr);
    blk->size = 0;
    pool_.release(blk);
}

TEST_F(BlockbagTest, IterationVisitsEveryRecord) {
    blockbag<rec, B> bag(pool_);
    auto recs = make_recs(2 * B + 3);
    std::set<rec*> expected;
    for (auto& r : recs) {
        bag.add(&r);
        expected.insert(&r);
    }
    std::set<rec*> seen;
    for (auto it = bag.begin(); it != bag.end(); ++it) {
        EXPECT_TRUE(seen.insert(*it).second);
    }
    EXPECT_EQ(seen, expected);
}

TEST_F(BlockbagTest, IterationOnEmptyBag) {
    blockbag<rec, B> bag(pool_);
    EXPECT_EQ(bag.begin(), bag.end());
}

TEST_F(BlockbagTest, SwapEntriesExchangesRecords) {
    blockbag<rec, B> bag(pool_);
    auto recs = make_recs(B + 2);
    for (auto& r : recs) bag.add(&r);
    auto it1 = bag.begin();
    auto it2 = bag.begin();
    ++it2;
    rec* a = *it1;
    rec* b = *it2;
    swap_entries(it1, it2);
    EXPECT_EQ(*it1, b);
    EXPECT_EQ(*it2, a);
}

TEST_F(BlockbagTest, TakeBlocksAfterPartitionPoint) {
    // The DEBRA+ rotate: partition "protected" records to the front, then
    // shed every full block after the boundary.
    blockbag<rec, B> bag(pool_);
    auto recs = make_recs(4 * B);
    for (auto& r : recs) bag.add(&r);
    // Mark the first three records (wherever they sit) as protected by
    // swapping them to the front, exactly like the rotate scan does.
    auto it1 = bag.begin();
    auto it2 = bag.begin();
    int kept = 0;
    for (; it1 != bag.end(); ++it1) {
        if ((*it1)->v < 3) {  // pretend v<3 records are hazard-protected
            swap_entries(it1, it2);
            ++it2;
            ++kept;
        }
    }
    EXPECT_EQ(kept, 3);
    const long long before = bag.size();
    auto chain = bag.take_blocks_after(it2);
    // Everything sheds except the blocks up to (and including) it2's block.
    long long shed = 0;
    for (auto* b = chain.head; b != nullptr; b = b->next_relaxed()) {
        EXPECT_TRUE(b->full());
        shed += b->size;
        for (int i = 0; i < b->size; ++i) EXPECT_GE(b->entries[i]->v, 3);
    }
    EXPECT_EQ(bag.size() + shed, before);
    // All protected records are still in the bag.
    int still_protected = 0;
    for (auto it = bag.begin(); it != bag.end(); ++it) {
        if ((*it)->v < 3) ++still_protected;
    }
    EXPECT_EQ(still_protected, 3);
    for (auto* b = chain.head; b != nullptr;) {
        auto* next = b->next_relaxed();
        b->size = 0;
        pool_.release(b);
        b = next;
    }
}

TEST_F(BlockbagTest, TakeBlocksAfterEndKeepsEverything) {
    blockbag<rec, B> bag(pool_);
    auto recs = make_recs(2 * B);
    for (auto& r : recs) bag.add(&r);
    auto chain = bag.take_blocks_after(bag.end());
    EXPECT_TRUE(chain.empty());
    EXPECT_EQ(bag.size(), 2 * B);
}

// Property sweep: for many (adds, removes) interleavings the bag behaves
// like a multiset of pointers and maintains the block invariant.
class BlockbagProperty : public ::testing::TestWithParam<int> {};

TEST_P(BlockbagProperty, RandomizedMultisetBehaviour) {
    const int seed = GetParam();
    block_pool<rec, 4> pool(64, nullptr, 0);
    blockbag<rec, 4> bag(pool);
    std::vector<rec> storage(512);
    std::multiset<rec*> model;
    std::uint64_t rng = static_cast<std::uint64_t>(seed) * 2654435761u + 1;
    auto next = [&rng] {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        return rng;
    };
    std::size_t next_rec = 0;
    for (int step = 0; step < 2000; ++step) {
        if (next() % 2 == 0 && next_rec < storage.size()) {
            rec* p = &storage[next_rec++];
            bag.add(p);
            model.insert(p);
        } else {
            rec* p = bag.remove();
            if (p == nullptr) {
                EXPECT_TRUE(model.empty());
            } else {
                auto it = model.find(p);
                ASSERT_NE(it, model.end());
                model.erase(it);
            }
        }
        EXPECT_EQ(bag.size(), static_cast<long long>(model.size()));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BlockbagProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace smr::mem
