// Tests for the optimistic lock-based skip list (src/ds/lazy_skiplist.h).
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "ds_test_util.h"

namespace smr {
namespace {

using testutil::key_t;
using testutil::val_t;

template <class Scheme>
class SkiplistTyped : public ::testing::Test {
  protected:
    using mgr_t = testutil::skip_mgr<Scheme>;
    using skip_t = ds::lazy_skiplist<key_t, val_t, mgr_t>;

    SkiplistTyped()
        : mgr_(2, testutil::fast_config<mgr_t>()), skip_(mgr_),
          h0_(mgr_.register_thread(0)) {}

    typename mgr_t::accessor_t acc() { return mgr_.access(h0_); }

    mgr_t mgr_;
    skip_t skip_;
    typename mgr_t::handle_t h0_;  // destroyed before mgr_ (reverse order)
};

using SkipSchemes = ::testing::Types<reclaim::reclaim_none,
                                     reclaim::reclaim_debra,
                                     reclaim::reclaim_ebr, reclaim::reclaim_hp>;
TYPED_TEST_SUITE(SkiplistTyped, SkipSchemes);

TYPED_TEST(SkiplistTyped, EmptyList) {
    EXPECT_FALSE(this->skip_.contains(this->acc(), 1));
    EXPECT_EQ(this->skip_.erase(this->acc(), 1), std::nullopt);
    EXPECT_EQ(this->skip_.size_slow(), 0);
    EXPECT_TRUE(this->skip_.validate_structure());
}

TYPED_TEST(SkiplistTyped, InsertFindErase) {
    EXPECT_TRUE(this->skip_.insert(this->acc(), 11, 110));
    EXPECT_EQ(this->skip_.find(this->acc(), 11), std::optional<val_t>(110));
    EXPECT_EQ(this->skip_.erase(this->acc(), 11), std::optional<val_t>(110));
    EXPECT_FALSE(this->skip_.contains(this->acc(), 11));
    EXPECT_TRUE(this->skip_.validate_structure());
}

TYPED_TEST(SkiplistTyped, DuplicateInsertFails) {
    EXPECT_TRUE(this->skip_.insert(this->acc(), 4, 40));
    EXPECT_FALSE(this->skip_.insert(this->acc(), 4, 41));
    EXPECT_EQ(this->skip_.find(this->acc(), 4), std::optional<val_t>(40));
}

TYPED_TEST(SkiplistTyped, TowersSpanLevels) {
    // With enough keys, some towers exceed level 0; every level must remain
    // a sorted sub-chain (validate_structure checks this).
    for (key_t k = 0; k < 500; ++k) {
        EXPECT_TRUE(this->skip_.insert(this->acc(), k, k));
    }
    EXPECT_EQ(this->skip_.size_slow(), 500);
    EXPECT_TRUE(this->skip_.validate_structure());
}

TYPED_TEST(SkiplistTyped, EraseEveryThird) {
    for (key_t k = 0; k < 300; ++k) this->skip_.insert(this->acc(), k, k);
    for (key_t k = 0; k < 300; k += 3) {
        EXPECT_EQ(this->skip_.erase(this->acc(), k), std::optional<val_t>(k));
    }
    EXPECT_EQ(this->skip_.size_slow(), 200);
    EXPECT_TRUE(this->skip_.validate_structure());
    for (key_t k = 0; k < 300; ++k) {
        EXPECT_EQ(this->skip_.contains(this->acc(), k), k % 3 != 0);
    }
}

TYPED_TEST(SkiplistTyped, DifferentialAgainstStdMap) {
    const long result =
        testutil::differential_test(this->skip_, this->acc(), 0xcafe, 5000, 100);
    EXPECT_GT(result, 0) << "divergence at op " << -result - 1;
    EXPECT_TRUE(this->skip_.validate_structure());
}

TYPED_TEST(SkiplistTyped, ChurnReclaimsMemory) {
    for (int round = 0; round < 2500; ++round) {
        const key_t k = round % 5;
        this->skip_.insert(this->acc(), k, round);
        this->skip_.erase(this->acc(), k);
    }
    EXPECT_EQ(this->skip_.size_slow(), 0);
    EXPECT_TRUE(this->skip_.validate_structure());
    if (std::string(TypeParam::name) != "none") {
        EXPECT_GT(this->mgr_.stats().total(stat::records_pooled) +
                      this->mgr_.stats().total(stat::records_reused),
                  0u);
    }
}

TYPED_TEST(SkiplistTyped, ReinsertionAfterDrain) {
    for (key_t k = 0; k < 50; ++k) this->skip_.insert(this->acc(), k, k);
    for (key_t k = 0; k < 50; ++k) this->skip_.erase(this->acc(), k);
    EXPECT_EQ(this->skip_.size_slow(), 0);
    for (key_t k = 0; k < 50; ++k) {
        EXPECT_TRUE(this->skip_.insert(this->acc(), k, k + 1));
    }
    EXPECT_EQ(this->skip_.size_slow(), 50);
    EXPECT_EQ(this->skip_.find(this->acc(), 10), std::optional<val_t>(11));
    EXPECT_TRUE(this->skip_.validate_structure());
}

}  // namespace
}  // namespace smr
