// Tests for the sustained-service soak machinery: the invariant monitor's
// sliding-window growth rule (src/obs/snapshot.h), the snapshot streamer's
// JSONL timeline, and short end-to-end run_serve_trial_set runs covering
// pacing, registration churn, and the leak canary (src/harness/serve.h).
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "harness/report.h"
#include "harness/serve.h"
#include "obs/event_ring.h"
#include "obs/snapshot.h"
#include "util/debug_stats.h"

#include "ds_test_util.h"

namespace smr {
namespace {

using harness::json;
using obs::invariant_monitor;
using obs::monitor_config;

// ---- invariant monitor: the window rule ------------------------------------

TEST(InvariantMonitor, FlatSeriesNeverViolates) {
    monitor_config cfg;
    cfg.window = 2;
    cfg.min_growth = 10;
    cfg.consecutive = 2;
    cfg.warmup = 0;
    invariant_monitor m(cfg);
    for (int i = 0; i < 50; ++i) m.observe(1000, 5000);
    EXPECT_EQ(m.violations(), 0);
    EXPECT_EQ(m.first_violation_sample(), -1);
    EXPECT_TRUE(m.first_violation().empty());
}

TEST(InvariantMonitor, OscillationBelowThresholdIsNoise) {
    // Scan-and-free schemes bounce limbo by whole batches; the windowed
    // growth of a bounded oscillation is ~0 and must not accumulate.
    monitor_config cfg;
    cfg.window = 4;
    cfg.min_growth = 100;
    cfg.consecutive = 2;
    cfg.warmup = 0;
    invariant_monitor m(cfg);
    for (int i = 0; i < 100; ++i) {
        m.observe(i % 2 == 0 ? 0 : 64, 1 << 20);  // bounded sawtooth
    }
    EXPECT_EQ(m.violations(), 0);
}

TEST(InvariantMonitor, RequiresConsecutiveOverThresholdWindows) {
    monitor_config cfg;
    cfg.window = 2;
    cfg.min_growth = 10;
    cfg.consecutive = 3;
    cfg.warmup = 0;
    invariant_monitor m(cfg);
    // Samples 1..6: 0, 0, 100, 200, 300, 400. The first over-threshold
    // window appears at sample 3 (100 - 0), so the third consecutive one
    // lands at sample 5 -- the first violation.
    const long long series[] = {0, 0, 100, 200, 300, 400};
    long long at_violation = -1;
    for (int i = 0; i < 6; ++i) {
        m.observe(series[i], 0);
        if (at_violation < 0 && m.violations() > 0) {
            at_violation = m.samples();
        }
    }
    EXPECT_GE(m.violations(), 1);
    EXPECT_EQ(at_violation, 5);
    EXPECT_EQ(m.first_violation_sample(), 5);
    EXPECT_NE(m.first_violation().find("limbo_estimate"), std::string::npos)
        << m.first_violation();
}

TEST(InvariantMonitor, QuietWindowResetsTheStreak) {
    monitor_config cfg;
    cfg.window = 2;
    cfg.min_growth = 10;
    cfg.consecutive = 3;
    cfg.warmup = 0;
    invariant_monitor m(cfg);
    // Two over-threshold windows (samples 3, 4), then a quiet one at
    // sample 5 (106 - 100 = 6 <= 10) resets the streak; the ramp restarts
    // and only completes three consecutive windows at sample 8.
    const long long series[] = {0, 0, 100, 105, 106, 200, 300, 400};
    for (int i = 0; i < 5; ++i) m.observe(series[i], 0);
    EXPECT_EQ(m.violations(), 0);
    EXPECT_EQ(m.limbo_streak(), 0) << "quiet window must reset the streak";
    for (int i = 5; i < 8; ++i) m.observe(series[i], 0);
    EXPECT_EQ(m.violations(), 1);
    EXPECT_EQ(m.first_violation_sample(), 8);
}

TEST(InvariantMonitor, WarmupPrefixIsSkipped) {
    monitor_config cfg;
    cfg.window = 1;
    cfg.min_growth = 0;
    cfg.consecutive = 1;
    cfg.warmup = 3;
    invariant_monitor m(cfg);
    // A violent prefill transient inside the warmup prefix is ignored;
    // the first checked sample is #4, whose one-sample growth still
    // exceeds the threshold, so the violation lands exactly there.
    m.observe(0, 0);
    m.observe(100000, 0);
    m.observe(200000, 0);
    EXPECT_EQ(m.violations(), 0) << "warmup samples must not be checked";
    m.observe(300000, 0);
    EXPECT_EQ(m.violations(), 1);
    EXPECT_EQ(m.first_violation_sample(), 4);
    // Growth stops: the streak resets, no further violations.
    m.observe(300000, 0);
    EXPECT_EQ(m.violations(), 1);
    EXPECT_EQ(m.limbo_streak(), 0);
}

TEST(InvariantMonitor, FootprintAxisIsIndependentlyWatched) {
    monitor_config cfg;
    cfg.window = 2;
    cfg.min_growth = 10;
    cfg.consecutive = 2;
    cfg.warmup = 0;
    invariant_monitor m(cfg);
    // Limbo flat (healthy reclamation), footprint ramping (allocator-side
    // leak): the footprint axis alone must carry the verdict.
    for (int i = 0; i < 10; ++i) {
        m.observe(64, static_cast<long long>(i) * 100);
    }
    EXPECT_GE(m.violations(), 1);
    EXPECT_NE(m.first_violation().find("footprint_records"),
              std::string::npos)
        << m.first_violation();
    EXPECT_EQ(m.limbo_streak(), 0);
}

// ---- snapshot streamer -----------------------------------------------------

std::string temp_timeline_path(const char* tag) {
    return testing::TempDir() + "smr_serve_test_" + tag + "_" +
           std::to_string(::getpid()) + ".jsonl";
}

TEST(SnapshotStreamer, TimelineLinesAllValidate) {
    const std::string path = temp_timeline_path("basic");
    debug_stats stats;
    obs::g_event_trace.enable(2, 64);

    obs::snapshot_config cfg;
    cfg.snapshot_ms = 10;
    cfg.path = path;
    obs::snapshot_streamer streamer(cfg, &stats);
    streamer.set_augment(
        [](json* snap) { snap->set("churn_waves", 0LL); });

    json meta = json::object();
    meta.set("ds", std::string("unit_test"));
    meta.set("scheme", std::string("none"));
    streamer.start(harness::SMR_BENCH_SCHEMA_VERSION, meta);
    for (int i = 0; i < 5; ++i) {
        stats.add(0, stat::records_allocated, 10);
        stats.add(0, stat::records_retired, 8);
        stats.add(0, stat::records_pooled, 8);
        obs::trace_emit(0, obs::trace_event::limbo_rotation,
                        static_cast<std::uint64_t>(i), 0);
        obs::trace_emit(1, obs::trace_event::scan_free, 4, 0);
        std::this_thread::sleep_for(std::chrono::milliseconds(12));
    }
    streamer.stop();
    obs::g_event_trace.disable();

    EXPECT_GE(streamer.snapshots(), 2);
    EXPECT_EQ(streamer.events_drained(), 10u);
    EXPECT_EQ(streamer.events_dropped(), 0u);
    EXPECT_EQ(streamer.violations(), 0);
    EXPECT_EQ(streamer.limbo_estimate(), 0);   // retired == pooled
    EXPECT_EQ(streamer.footprint_records(), 50);

    // Every line is a self-contained, schema-valid JSON document and the
    // header comes first -- the contract trace_export relies on.
    std::ifstream in(path);
    ASSERT_TRUE(in.is_open()) << path;
    std::string line;
    long long lines = 0, snapshots = 0, event_lines = 0;
    while (std::getline(in, line)) {
        ++lines;
        auto parsed = json::parse(line);
        ASSERT_TRUE(parsed.has_value()) << "line " << lines << ": " << line;
        std::string err;
        EXPECT_TRUE(harness::validate_timeline_line(*parsed, &err))
            << "line " << lines << ": " << err;
        ASSERT_NE(parsed->find("type"), nullptr);
        const std::string type = parsed->find("type")->as_string();
        if (lines == 1) {
            EXPECT_EQ(type, "timeline_header");
        }
        if (type == "snapshot") ++snapshots;
        if (type == "events") ++event_lines;
    }
    in.close();
    EXPECT_EQ(snapshots, streamer.snapshots());
    EXPECT_GE(event_lines, 1);
    std::remove(path.c_str());
}

TEST(SnapshotStreamer, EmptyPathMonitorsWithoutWriting) {
    debug_stats stats;
    obs::snapshot_config cfg;
    cfg.snapshot_ms = 5;
    cfg.path = "";  // monitor-only: no file
    cfg.monitor.window = 1;
    cfg.monitor.min_growth = 0;
    cfg.monitor.consecutive = 1;
    cfg.monitor.warmup = 0;
    obs::snapshot_streamer streamer(cfg, &stats);
    streamer.start(harness::SMR_BENCH_SCHEMA_VERSION, json::object());
    // Sustained limbo growth: retired accrues, nothing is ever pooled.
    for (int i = 0; i < 30; ++i) {
        stats.add(0, stat::records_retired, 1000);
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    streamer.stop();
    EXPECT_GE(streamer.snapshots(), 2);
    EXPECT_GE(streamer.violations(), 1);
    EXPECT_GE(streamer.first_violation_sample(), 1);
    EXPECT_FALSE(streamer.first_violation().empty());
}

TEST(SnapshotStreamer, StopIsIdempotent) {
    debug_stats stats;
    obs::snapshot_config cfg;
    cfg.snapshot_ms = 1000;
    obs::snapshot_streamer streamer(cfg, &stats);
    streamer.start(harness::SMR_BENCH_SCHEMA_VERSION, json::object());
    streamer.stop();
    const long long after_first = streamer.snapshots();
    EXPECT_GE(after_first, 1) << "stop() takes one final tick";
    streamer.stop();  // second stop is a no-op
    EXPECT_EQ(streamer.snapshots(), after_first);
}

// ---- end-to-end serve trials -----------------------------------------------

using testutil::key_t;
using testutil::val_t;
using serve_mgr_t = testutil::bst_mgr<reclaim::reclaim_debra>;

harness::workload_config base_serve_config(int trial_ms) {
    harness::workload_config cfg;
    cfg.num_threads = 2;
    cfg.key_range = 1024;
    cfg.insert_pct = 50;
    cfg.delete_pct = 50;
    cfg.trial_ms = trial_ms;
    cfg.lat_sample = 0;
    cfg.serve.enabled = true;
    cfg.serve.ops_per_sec = 40000;
    cfg.serve.snapshot_ms = 20;
    cfg.serve.ring_capacity = 256;
    return cfg;
}

TEST(ServeTrial, PacedSoakWithChurnProducesValidTimeline) {
#ifdef SMR_TSAN
    const int trial_ms = 300;
#else
    const int trial_ms = 500;
#endif
    const std::string path = temp_timeline_path("soak");
    serve_mgr_t mgr(2, testutil::fast_config<serve_mgr_t>());
    ds::ellen_bst<key_t, val_t, serve_mgr_t> bst(mgr);

    harness::workload_config cfg = base_serve_config(trial_ms);
    cfg.serve.timeline_path = path;
    cfg.serve.churn_period_ms = 60;
    cfg.serve.churn_threads = 1;

    json meta = json::object();
    meta.set("ds", std::string("ellen_bst"));
    meta.set("scheme", std::string("debra"));
    const auto res = harness::run_serve_trial_set(
        bst, mgr, cfg, harness::SMR_BENCH_SCHEMA_VERSION, meta);

    EXPECT_TRUE(res.serve.ran);
    EXPECT_GT(res.total_ops, 0);
    // Open-loop pacing: the token bucket cannot overshoot the arrival
    // curve by more than a batch per thread, so the achieved rate is
    // bounded above; no lower bound (a loaded CI box may lag).
    EXPECT_GT(res.serve.achieved_ops_per_sec, 0.0);
    EXPECT_LE(res.serve.achieved_ops_per_sec,
              res.serve.target_ops_per_sec * 1.5);
    EXPECT_GE(res.serve.snapshots, 3);
    EXPECT_GE(res.serve.churn_cycles, 1) << "churn waves must have fired";
    EXPECT_EQ(res.serve.canary_leaks, 0);
    EXPECT_GT(res.serve.events_drained, 0u)
        << "register/deregister churn alone must produce trace events";
    // No leak: default monitor thresholds tolerate scan oscillation.
    EXPECT_EQ(res.serve.monitor_violations, 0);
    EXPECT_EQ(res.serve.first_violation_snapshot, -1);
    // The structural invariant the closed-loop trials also enforce.
    EXPECT_EQ(res.final_size, res.expected_final_size);

    // Timeline on disk: header first, every line schema-valid.
    std::ifstream in(path);
    ASSERT_TRUE(in.is_open()) << path;
    std::string line;
    long long lines = 0;
    while (std::getline(in, line)) {
        ++lines;
        auto parsed = json::parse(line);
        ASSERT_TRUE(parsed.has_value()) << "line " << lines;
        std::string err;
        EXPECT_TRUE(harness::validate_timeline_line(*parsed, &err))
            << "line " << lines << ": " << err;
        if (lines == 1) {
            ASSERT_NE(parsed->find("type"), nullptr);
            EXPECT_EQ(parsed->find("type")->as_string(), "timeline_header");
            ASSERT_NE(parsed->find("mode"), nullptr);
            EXPECT_EQ(parsed->find("mode")->as_string(), "serve");
            ASSERT_NE(parsed->find("ds"), nullptr);
            EXPECT_EQ(parsed->find("ds")->as_string(), "ellen_bst");
        }
    }
    EXPECT_GE(lines, 1 + res.serve.snapshots);
    std::remove(path.c_str());
}

TEST(ServeTrial, CanaryLeakTripsTheMonitor) {
#ifdef SMR_TSAN
    const int trial_ms = 400;
#else
    const int trial_ms = 600;
#endif
    serve_mgr_t mgr(2, testutil::fast_config<serve_mgr_t>());
    ds::ellen_bst<key_t, val_t, serve_mgr_t> bst(mgr);

    harness::workload_config cfg = base_serve_config(trial_ms);
    // No timeline file: the verdict machinery alone is under test.
    cfg.serve.canary_leak_every = 5;
    cfg.serve.monitor_window = 2;
    cfg.serve.monitor_min_growth = 4;
    cfg.serve.monitor_consecutive = 2;
    cfg.serve.monitor_warmup = 1;

    const auto res = harness::run_serve_trial_set(
        bst, mgr, cfg, harness::SMR_BENCH_SCHEMA_VERSION);

    EXPECT_TRUE(res.serve.ran);
    EXPECT_GT(res.serve.canary_leaks, 0);
    EXPECT_GE(res.serve.monitor_violations, 1)
        << "the leak sentinel must trip on a deliberate leak";
    EXPECT_GE(res.serve.first_violation_snapshot, 1);
    // The canary leaks records *outside* the structure; the set-membership
    // invariant still holds even while the reclamation counters drift.
    EXPECT_EQ(res.final_size, res.expected_final_size);
}

TEST(ServeTrial, UnpacedZeroRateDegeneratesToClosedLoop) {
    serve_mgr_t mgr(2, testutil::fast_config<serve_mgr_t>());
    ds::ellen_bst<key_t, val_t, serve_mgr_t> bst(mgr);

    harness::workload_config cfg = base_serve_config(150);
    cfg.serve.ops_per_sec = 0;  // unpaced: run flat out, still sampled
    const auto res = harness::run_serve_trial_set(
        bst, mgr, cfg, harness::SMR_BENCH_SCHEMA_VERSION);

    EXPECT_TRUE(res.serve.ran);
    EXPECT_GT(res.total_ops, 0);
    EXPECT_EQ(res.serve.target_ops_per_sec, 0.0);
    EXPECT_GT(res.serve.achieved_ops_per_sec, 0.0);
    EXPECT_GE(res.serve.snapshots, 1);
    EXPECT_EQ(res.serve.monitor_violations, 0);
    EXPECT_EQ(res.final_size, res.expected_final_size);
}

}  // namespace
}  // namespace smr
