// Tests for the per-thread lock-free event rings (src/obs/event_ring.h):
// record packing, drop-oldest accounting, the disabled-trace no-op path,
// and the SPSC producer/consumer protocol under concurrency.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "obs/event_ring.h"

namespace smr {
namespace {

using obs::event_record;
using obs::event_ring;
using obs::trace_event;

TEST(EventRing, CapacityRoundsUpToPowerOfTwo) {
    EXPECT_EQ(event_ring(1).capacity(), event_ring::MIN_CAPACITY);
    EXPECT_EQ(event_ring(8).capacity(), 8u);
    EXPECT_EQ(event_ring(9).capacity(), 16u);
    EXPECT_EQ(event_ring(4096).capacity(), 4096u);
    EXPECT_EQ(event_ring(5000).capacity(), 8192u);
}

TEST(EventRing, RecordsRoundTripThroughPacking) {
    event_ring r(64);
    r.emit(trace_event::limbo_rotation, 7, 42, 99);
    r.emit(trace_event::scan_free, 7, 3, 0);
    std::vector<event_record> out;
    EXPECT_EQ(r.drain(&out), 2u);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].ev, trace_event::limbo_rotation);
    EXPECT_EQ(out[0].tid, 7);
    EXPECT_EQ(out[0].arg0, 42u);
    EXPECT_EQ(out[0].arg1, 99u);
    EXPECT_EQ(out[0].seq, 0u);
    EXPECT_EQ(out[1].ev, trace_event::scan_free);
    EXPECT_EQ(out[1].seq, 1u);
    // Timestamps are monotone per ring (single producer, one clock).
    EXPECT_LE(out[0].tsc, out[1].tsc);
    // A second drain finds nothing.
    EXPECT_EQ(r.drain(&out), 0u);
}

TEST(EventRing, DropOldestKeepsNewestAndCounts) {
    event_ring r(8);  // exactly MIN_CAPACITY
    for (int i = 0; i < 20; ++i) {
        r.emit(trace_event::epoch_advance, 0,
               static_cast<std::uint64_t>(i), 0);
    }
    EXPECT_EQ(r.emitted(), 20u);
    EXPECT_EQ(r.dropped(), 12u);  // 20 emitted - 8 slots
    std::vector<event_record> out;
    EXPECT_EQ(r.drain(&out), 8u);
    // The survivors are the newest 8, in emission order.
    for (std::size_t i = 0; i < out.size(); ++i) {
        EXPECT_EQ(out[i].arg0, 12 + i);
        EXPECT_EQ(out[i].seq, 12 + i);
    }
}

TEST(EventRing, DrainInterleavesWithEmission) {
    event_ring r(16);
    std::vector<event_record> out;
    std::uint64_t next = 0;
    for (int round = 0; round < 10; ++round) {
        for (int i = 0; i < 5; ++i) {
            r.emit(trace_event::limbo_rotation, 1, next++, 0);
        }
        r.drain(&out);
    }
    ASSERT_EQ(out.size(), 50u);
    for (std::size_t i = 0; i < out.size(); ++i) {
        EXPECT_EQ(out[i].arg0, i);
    }
    EXPECT_EQ(r.dropped(), 0u);
}

// The SPSC contract under real concurrency: one producer emitting flat
// out, one consumer draining continuously. Every record is either
// delivered exactly once or counted as a producer-side drop -- no loss,
// no duplication, order preserved within the delivered subsequence.
TEST(EventRing, ConcurrentProducerConsumerAccountsForEveryRecord) {
#ifdef SMR_TSAN
    constexpr std::uint64_t N = 20000;
#else
    constexpr std::uint64_t N = 200000;
#endif
    event_ring r(64);  // small on purpose: force drops under load
    std::vector<event_record> out;
    std::thread consumer([&] {
        while (out.size() + r.dropped() < N) {
            r.drain(&out);
            std::this_thread::yield();
        }
    });
    for (std::uint64_t i = 0; i < N; ++i) {
        r.emit(trace_event::scan_free, 2, i, 0);
    }
    consumer.join();
    r.drain(&out);  // final sweep after the producer stopped
    EXPECT_EQ(out.size() + r.dropped(), N);
    // Delivered records are a strictly increasing subsequence of the
    // emission order (arg0 carries the emission index).
    for (std::size_t i = 1; i < out.size(); ++i) {
        EXPECT_LT(out[i - 1].arg0, out[i].arg0);
        EXPECT_LT(out[i - 1].seq, out[i].seq);
    }
}

// The reserve-first publication protocol: a nested signal-handler emit is
// modeled by a second producer thread. Because emit() reserves its index
// with a head CAS *before* touching the slot, an interrupted/concurrent
// emit can never rewrite a slot the other frame already published. (The
// pre-fix protocol wrote the slot words first and published afterwards:
// under this test it delivers the same record at two indices -- duplicate
// seq -- and silently loses the clobbered one.) The ring is sized to hold
// every record so no index is ever lapped: every emission must come back
// exactly once, in reservation order.
TEST(EventRing, ConcurrentEmitNeverClobbersAPublishedRecord) {
#ifdef SMR_TSAN
    constexpr std::uint64_t N = 8192;
#else
    constexpr std::uint64_t N = 65536;
#endif
    event_ring r(2 * N);  // no drops: every reservation stays live
    std::vector<event_record> out;
    std::atomic<bool> done{false};
    std::thread consumer([&] {
        while (!done.load(std::memory_order_acquire)) {
            r.drain(&out);
            std::this_thread::yield();
        }
    });
    auto produce = [&r](int tid) {
        for (std::uint64_t i = 0; i < N; ++i) {
            r.emit(trace_event::scan_free, tid, i, 0);
        }
    };
    std::thread second([&] { produce(3); });
    produce(2);
    second.join();
    done.store(true, std::memory_order_release);
    consumer.join();
    r.drain(&out);  // final sweep after both producers stopped
    EXPECT_EQ(r.emitted(), 2 * N);
    EXPECT_EQ(r.dropped(), 0u);
    ASSERT_EQ(out.size(), 2 * N);
    std::uint64_t last_arg[2] = {0, 0};
    for (std::size_t i = 0; i < out.size(); ++i) {
        // seq is the reservation index: contiguous, no duplicates.
        EXPECT_EQ(out[i].seq, i);
        if (i > 0) {
            EXPECT_LE(out[i - 1].tsc, out[i].tsc);
        }
        // Each producer's records arrive in its emission order.
        ASSERT_TRUE(out[i].tid == 2 || out[i].tid == 3);
        std::uint64_t& last = last_arg[out[i].tid - 2];
        EXPECT_EQ(out[i].arg0, last);
        ++last;
    }
    EXPECT_EQ(last_arg[0], N);
    EXPECT_EQ(last_arg[1], N);
}

TEST(EventTrace, DisabledTraceIsANoOpAndNullRing) {
    obs::event_trace tr;
    EXPECT_FALSE(tr.enabled());
    EXPECT_EQ(tr.ring(0), nullptr);
    EXPECT_EQ(tr.max_tids(), 0);
    tr.emit(0, trace_event::epoch_advance, 1, 2);  // must not crash
    EXPECT_EQ(tr.total_emitted(), 0u);
    EXPECT_EQ(tr.total_dropped(), 0u);
}

TEST(EventTrace, EnableEmitDrainDisable) {
    obs::event_trace tr;
    tr.enable(4, 32);
    EXPECT_TRUE(tr.enabled());
    EXPECT_EQ(tr.max_tids(), 4);
    tr.emit(0, trace_event::thread_register, 0, 0);
    tr.emit(3, trace_event::thread_register, 3, 0);
    tr.emit(99, trace_event::thread_register, 99, 0);  // out of range: no-op
    tr.emit(-1, trace_event::thread_register, 0, 0);   // negative: no-op
    EXPECT_EQ(tr.total_emitted(), 2u);
    std::vector<event_record> out;
    ASSERT_NE(tr.ring(0), nullptr);
    EXPECT_EQ(tr.ring(0)->drain(&out), 1u);
    ASSERT_NE(tr.ring(3), nullptr);
    EXPECT_EQ(tr.ring(3)->drain(&out), 1u);
    EXPECT_EQ(out[1].tid, 3);
    tr.disable();
    EXPECT_FALSE(tr.enabled());
    tr.emit(0, trace_event::thread_register, 0, 0);  // disabled again
    EXPECT_EQ(tr.total_emitted(), 0u);
}

TEST(EventTrace, GlobalTraceEmitHelperRespectsDisabled) {
    // The global is disabled by default in a fresh process; the helper is
    // the fast path every subsystem calls unconditionally.
    ASSERT_FALSE(obs::g_event_trace.enabled());
    obs::trace_emit(0, trace_event::limbo_rotation, 1, 2);  // no-op
    obs::g_event_trace.enable(2, 16);
    obs::trace_emit(1, trace_event::limbo_rotation, 5, 6);
    std::vector<event_record> out;
    EXPECT_EQ(obs::g_event_trace.ring(1)->drain(&out), 1u);
    EXPECT_EQ(out[0].arg0, 5u);
    obs::g_event_trace.disable();
}

}  // namespace
}  // namespace smr
