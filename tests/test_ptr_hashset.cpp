// Tests for the open-addressing scan set (src/mem/ptr_hashset.h).
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "mem/ptr_hashset.h"
#include "util/prng.h"

namespace smr::mem {
namespace {

TEST(PtrHashset, EmptyContainsNothing) {
    ptr_hashset s(16);
    int dummy;
    EXPECT_FALSE(s.contains(&dummy));
    EXPECT_FALSE(s.contains(nullptr));
    EXPECT_EQ(s.size(), 0u);
}

TEST(PtrHashset, InsertThenContains) {
    ptr_hashset s(16);
    int a, b;
    s.insert(&a);
    EXPECT_TRUE(s.contains(&a));
    EXPECT_FALSE(s.contains(&b));
    EXPECT_EQ(s.size(), 1u);
}

TEST(PtrHashset, NullInsertIsNoop) {
    ptr_hashset s(16);
    s.insert(nullptr);
    EXPECT_EQ(s.size(), 0u);
    EXPECT_FALSE(s.contains(nullptr));
}

TEST(PtrHashset, DuplicateInsertCountedOnce) {
    ptr_hashset s(16);
    int a;
    s.insert(&a);
    s.insert(&a);
    s.insert(&a);
    EXPECT_EQ(s.size(), 1u);
    EXPECT_TRUE(s.contains(&a));
}

TEST(PtrHashset, ClearEmptiesTheSet) {
    ptr_hashset s(16);
    std::vector<int> xs(10);
    for (auto& x : xs) s.insert(&x);
    EXPECT_EQ(s.size(), 10u);
    s.clear();
    EXPECT_EQ(s.size(), 0u);
    for (auto& x : xs) EXPECT_FALSE(s.contains(&x));
}

TEST(PtrHashset, ClearOnEmptyIsCheapAndCorrect) {
    ptr_hashset s(16);
    s.clear();
    EXPECT_EQ(s.size(), 0u);
}

TEST(PtrHashset, ReusableAcrossScans) {
    // The reclaimers clear + rebuild the same set every scan.
    ptr_hashset s(32);
    std::vector<long> xs(20);
    for (int scan = 0; scan < 50; ++scan) {
        s.clear();
        for (std::size_t i = static_cast<std::size_t>(scan) % 5; i < xs.size();
             i += 3) {
            s.insert(&xs[i]);
        }
        for (std::size_t i = 0; i < xs.size(); ++i) {
            const bool expected =
                i >= static_cast<std::size_t>(scan) % 5 &&
                (i - static_cast<std::size_t>(scan) % 5) % 3 == 0;
            EXPECT_EQ(s.contains(&xs[i]), expected) << "scan " << scan
                                                    << " idx " << i;
        }
    }
}

TEST(PtrHashset, FillToSizingBound) {
    constexpr std::size_t N = 100;
    ptr_hashset s(N);
    std::vector<long> xs(N);
    for (auto& x : xs) s.insert(&x);
    EXPECT_EQ(s.size(), N);
    for (auto& x : xs) EXPECT_TRUE(s.contains(&x));
}

class PtrHashsetProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PtrHashsetProperty, AgreesWithStdSet) {
    prng rng(GetParam());
    constexpr std::size_t N = 256;
    ptr_hashset s(N);
    std::vector<long> storage(N);
    std::set<const void*> model;
    for (int i = 0; i < 1000; ++i) {
        const auto idx = static_cast<std::size_t>(rng.next(N));
        const void* p = &storage[idx];
        if (model.size() < N && rng.chance_percent(60)) {
            s.insert(p);
            model.insert(p);
        } else {
            EXPECT_EQ(s.contains(p), model.count(p) > 0);
        }
        EXPECT_EQ(s.size(), model.size());
    }
    for (const auto& x : storage) {
        EXPECT_EQ(s.contains(&x), model.count(&x) > 0);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PtrHashsetProperty,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u));

}  // namespace
}  // namespace smr::mem
