// Tests for low-bit pointer tagging (src/util/tagged_ptr.h).
#include <gtest/gtest.h>

#include <cstdint>

#include "util/tagged_ptr.h"

namespace smr {
namespace {

struct alignas(8) rec {
    long x;
};

using mp = marked_ptr<rec>;
using sp = stated_ptr<rec>;

TEST(MarkedPtr, PackUnpackRoundTrip) {
    rec r{};
    for (bool m : {false, true}) {
        const std::uintptr_t w = mp::pack(&r, m);
        EXPECT_EQ(mp::ptr(w), &r);
        EXPECT_EQ(mp::is_marked(w), m);
    }
}

TEST(MarkedPtr, NullPointer) {
    EXPECT_EQ(mp::ptr(mp::pack(nullptr, false)), nullptr);
    EXPECT_EQ(mp::ptr(mp::pack(nullptr, true)), nullptr);
    EXPECT_TRUE(mp::is_marked(mp::pack(nullptr, true)));
    EXPECT_FALSE(mp::is_marked(mp::pack(nullptr, false)));
}

TEST(MarkedPtr, MarkedAndUnmarkedDiffer) {
    rec r{};
    EXPECT_NE(mp::pack(&r, true), mp::pack(&r, false));
}

TEST(StatedPtr, AllFourStatesRoundTrip) {
    rec r{};
    for (unsigned st = 0; st < 4; ++st) {
        const std::uintptr_t w = sp::pack(&r, st);
        EXPECT_EQ(sp::ptr(w), &r);
        EXPECT_EQ(sp::state(w), st);
    }
}

TEST(StatedPtr, StateMaskedToTwoBits) {
    rec r{};
    EXPECT_EQ(sp::state(sp::pack(&r, 7)), 3u);
    EXPECT_EQ(sp::ptr(sp::pack(&r, 7)), &r);
}

TEST(StatedPtr, DistinctStatesDistinctWords) {
    rec r{};
    for (unsigned a = 0; a < 4; ++a) {
        for (unsigned b = a + 1; b < 4; ++b) {
            EXPECT_NE(sp::pack(&r, a), sp::pack(&r, b));
        }
    }
}

TEST(StatedPtr, NullWithState) {
    const std::uintptr_t w = sp::pack(nullptr, 2);
    EXPECT_EQ(sp::ptr(w), nullptr);
    EXPECT_EQ(sp::state(w), 2u);
}

}  // namespace
}  // namespace smr
