// Tests for the size-class arena allocator (src/alloc/arena/): rounding
// boundaries, magazine refill/flush behavior, the cross-thread home-return
// protocol over forced multi-shard topologies, and ASan-clean concurrent
// churn.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "alloc/arena/arena_alloc.h"
#include "alloc/arena/size_classes.h"
#include "topo/topology.h"
#include "util/debug_stats.h"

namespace smr::alloc {
namespace {

// ---- size classes --------------------------------------------------------

TEST(SizeClasses, RoundingBoundaries) {
    // The jemalloc ladder: 8, then multiples of 16 to 128, then four
    // classes per power-of-two group.
    EXPECT_EQ(round_size(0), 8u);
    EXPECT_EQ(round_size(1), 8u);
    EXPECT_EQ(round_size(8), 8u);
    EXPECT_EQ(round_size(9), 16u);
    EXPECT_EQ(round_size(16), 16u);
    EXPECT_EQ(round_size(17), 32u);
    EXPECT_EQ(round_size(127), 128u);
    EXPECT_EQ(round_size(128), 128u);
    EXPECT_EQ(round_size(129), 160u);
    EXPECT_EQ(round_size(160), 160u);
    EXPECT_EQ(round_size(161), 192u);
    EXPECT_EQ(round_size(256), 256u);
    EXPECT_EQ(round_size(257), 320u);
    EXPECT_EQ(round_size(512), 512u);
    EXPECT_EQ(round_size(513), 640u);
    EXPECT_EQ(round_size(SIZE_CLASS_MAX), SIZE_CLASS_MAX);
}

TEST(SizeClasses, TableIsAscendingAndIdempotent) {
    for (int i = 0; i < NUM_SIZE_CLASSES; ++i) {
        const std::size_t c = size_class_bytes(i);
        // A class rounds to itself (classes are fixed points)...
        EXPECT_EQ(round_size(c), c);
        // ...and the table maps back to the same index.
        EXPECT_EQ(size_class_index(c), i);
        if (i > 0) EXPECT_GT(c, size_class_bytes(i - 1));
    }
    // Fragmentation bound: a size rounds up by at most 25%.
    for (std::size_t n = 129; n <= SIZE_CLASS_MAX; n += 7) {
        EXPECT_LE(round_size(n) - n, n / 4) << "n=" << n;
    }
}

TEST(SizeClasses, IndexMatchesRounding) {
    for (std::size_t n = 1; n <= 2048; ++n) {
        EXPECT_EQ(size_class_bytes(size_class_index(n)), round_size(n))
            << "n=" << n;
    }
}

// ---- arena allocator -----------------------------------------------------

struct rec {
    long long a, b;  // 16 bytes -> slot class 16
};

using arena_t = allocator_arena<rec>;

/// Forces a deterministic 2-shard topology (tid % 2) for the duration of
/// each test; the arena snapshots the shard count at construction.
class ArenaTwoShards : public ::testing::Test {
  protected:
    void SetUp() override {
        topo::set_topology_for_testing(topo::topology::forced(2, 4));
    }
    void TearDown() override { topo::reset_topology_for_testing(); }
};

/// Forces one shard so the single-shard assertions below hold on any
/// host, including genuine multi-socket machines (where the detected
/// topology would otherwise route the gtest thread to a nonzero shard).
class ArenaAlloc : public ::testing::Test {
  protected:
    void SetUp() override {
        topo::set_topology_for_testing(topo::topology::single_node(2));
    }
    void TearDown() override { topo::reset_topology_for_testing(); }
};

TEST_F(ArenaAlloc, AllocateReturnsDistinctAlignedSlots) {
    debug_stats stats;
    arena_t arena(1, &stats);
    std::set<rec*> seen;
    for (int i = 0; i < 1000; ++i) {
        rec* p = arena.allocate(0);
        ASSERT_NE(p, nullptr);
        EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % alignof(rec), 0u);
        EXPECT_TRUE(seen.insert(p).second) << "slot handed out twice";
        p->a = i;  // touch: ASan catches a bad carve
    }
    // Hand-out accounting matches the other allocators: nothing was ever
    // freed, so every allocate counted as fresh -- exactly once.
    EXPECT_EQ(stats.total(stat::records_allocated), 1000u);
    EXPECT_EQ(stats.total(stat::records_reused), 0u);
    EXPECT_GT(stats.total(stat::arena_slabs), 0u);
    for (rec* p : seen) arena.deallocate(0, p);
}

TEST_F(ArenaAlloc, MagazineRefillsInBatchesAndReusesFreedSlots) {
    debug_stats stats;
    arena_t arena(1, &stats);
    // First allocate refills the empty magazine with MAG_CAP/2 slots.
    rec* p = arena.allocate(0);
    EXPECT_EQ(arena.magazine_size(0), arena_t::MAG_CAP / 2 - 1);
    arena.deallocate(0, p);
    // Freed slot sits in the magazine and comes straight back.
    rec* q = arena.allocate(0);
    EXPECT_EQ(q, p);
    EXPECT_GT(stats.total(stat::records_reused), 0u);
    arena.deallocate(0, q);
}

TEST_F(ArenaAlloc, OverfullMagazineFlushesToShardFreeList) {
    debug_stats stats;
    arena_t arena(1, &stats);
    std::vector<rec*> held;
    // Hold more records than the magazine can cache, then free them all:
    // the magazine must overflow into the shard free list.
    for (int i = 0; i < arena_t::MAG_CAP * 3; ++i) {
        held.push_back(arena.allocate(0));
    }
    for (rec* p : held) arena.deallocate(0, p);
    EXPECT_LE(arena.magazine_size(0), arena_t::MAG_CAP);
    EXPECT_GT(arena.shard_free_records(0), 0);
    // A refill after draining the magazine pulls from the free list.
    const auto reused_before = stats.total(stat::records_reused);
    std::vector<rec*> again;
    for (int i = 0; i < arena_t::MAG_CAP * 2; ++i) {
        again.push_back(arena.allocate(0));
    }
    EXPECT_GT(stats.total(stat::records_reused), reused_before);
    for (rec* p : again) arena.deallocate(0, p);
}

TEST_F(ArenaTwoShards, SlabsAreStampedWithTheCarvingShard) {
    debug_stats stats;
    arena_t arena(2, &stats);
    ASSERT_EQ(arena.shards(), 2);
    // tid 0 -> shard 0, tid 1 -> shard 1 under the forced topology.
    rec* p0 = arena.allocate(0);
    rec* p1 = arena.allocate(1);
    EXPECT_EQ(arena_t::home_shard_of(p0), 0);
    EXPECT_EQ(arena_t::home_shard_of(p1), 1);
    arena.deallocate(0, p0);
    arena.deallocate(1, p1);
}

TEST_F(ArenaTwoShards, CrossThreadFreeReturnsToHomeShard) {
    debug_stats stats;
    arena_t arena(2, &stats);
    // Thread 0 (shard 0) allocates; thread 1 (shard 1) frees. After the
    // flush every record must land on shard 0's free list -- the home
    // stamped in its slab -- not on the freeing thread's shard.
    constexpr int N = arena_t::MAG_CAP * 2;
    std::vector<rec*> recs;
    for (int i = 0; i < N; ++i) {
        rec* p = arena.allocate(0);
        EXPECT_EQ(arena_t::home_shard_of(p), 0);
        recs.push_back(p);
    }
    for (rec* p : recs) arena.deallocate(1, p);
    arena.flush_magazine(1);
    EXPECT_EQ(arena.shard_free_records(0), N);
    EXPECT_EQ(arena.shard_free_records(1), 0);
    // Every cross-shard send was counted.
    EXPECT_EQ(stats.get(1, stat::arena_remote_frees),
              static_cast<std::uint64_t>(N));
}

TEST_F(ArenaTwoShards, LocalFreeIsNotCountedRemote) {
    debug_stats stats;
    arena_t arena(2, &stats);
    std::vector<rec*> recs;
    for (int i = 0; i < arena_t::MAG_CAP * 2; ++i) {
        recs.push_back(arena.allocate(0));
    }
    for (rec* p : recs) arena.deallocate(0, p);
    arena.flush_magazine(0);
    EXPECT_EQ(stats.total(stat::arena_remote_frees), 0u);
    EXPECT_EQ(arena.shard_free_records(1), 0);
}

TEST_F(ArenaTwoShards, ConcurrentChurnAcrossShards) {
    // Two threads on different shards allocate, exchange, and free
    // records concurrently: exercises the shard locks and the home-return
    // grouping under ASan/TSan-style scrutiny.
    debug_stats stats;
    arena_t arena(2, &stats);
    constexpr int ITERS = 20000;
    std::atomic<rec*> exchange{nullptr};
    std::atomic<bool> failed{false};
    std::vector<std::thread> workers;
    for (int t = 0; t < 2; ++t) {
        workers.emplace_back([&, t] {
            std::vector<rec*> mine;
            for (int i = 0; i < ITERS; ++i) {
                if (mine.size() < 128 && (i & 3) != 3) {
                    rec* p = arena.allocate(t);
                    if (p == nullptr) {
                        failed = true;
                        return;
                    }
                    p->a = t;
                    p->b = i;
                    mine.push_back(p);
                } else if (!mine.empty()) {
                    arena.deallocate(t, mine.back());
                    mine.pop_back();
                }
                // Occasionally hand a record to the other thread, so
                // frees happen away from home.
                if ((i & 63) == 0 && !mine.empty()) {
                    rec* expected = nullptr;
                    if (exchange.compare_exchange_strong(expected,
                                                         mine.back())) {
                        mine.pop_back();
                    }
                } else if ((i & 63) == 32) {
                    if (rec* stranger = exchange.exchange(nullptr)) {
                        arena.deallocate(t, stranger);
                    }
                }
            }
            for (rec* p : mine) arena.deallocate(t, p);
        });
    }
    for (auto& w : workers) w.join();
    if (rec* leftover = exchange.exchange(nullptr)) {
        arena.deallocate(0, leftover);
    }
    EXPECT_FALSE(failed.load());
    // Accounting identity: every hand-out was counted exactly once
    // (fresh or reused) and everything handed out was freed again.
    EXPECT_EQ(stats.total(stat::records_freed),
              stats.total(stat::records_allocated) +
                  stats.total(stat::records_reused));
    // After flushing both magazines every slot that ever circulated is
    // on some shard's free list: at least one distinct slot per fresh
    // hand-out -- none lost.
    arena.flush_magazine(0);
    arena.flush_magazine(1);
    EXPECT_GE(arena.shard_free_records(0) + arena.shard_free_records(1),
              static_cast<long long>(stats.total(stat::records_allocated)));
}

TEST_F(ArenaAlloc, SingleShardHostDegradesCleanly) {
    debug_stats stats;
    arena_t arena(2, &stats);
    EXPECT_EQ(arena.shards(), 1);
    std::vector<rec*> recs;
    for (int i = 0; i < 500; ++i) recs.push_back(arena.allocate(0));
    for (rec* p : recs) arena.deallocate(1, p);  // cross-thread, same shard
    arena.flush_magazine(1);
    EXPECT_EQ(stats.total(stat::arena_remote_frees), 0u);
}

}  // namespace
}  // namespace smr::alloc
