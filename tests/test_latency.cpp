// Tests for the latency observability layer: the log-scale histogram core
// (src/util/latency_hist.h -- bucket boundary math, merge algebra,
// percentile extraction against a sorted-sample oracle, clock
// calibration), the harness recording layer (src/harness/latency.h --
// sampling gate, per-op-kind histograms), stall attribution in
// debug_stats, and an end-to-end timed trial whose latency_result must be
// populated exactly when sampling is on.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>
#include <vector>

#include "ds_test_util.h"
#include "harness/latency.h"
#include "harness/workload.h"
#include "util/debug_stats.h"
#include "util/latency_hist.h"
#include "util/prng.h"

namespace smr {
namespace {

// ---- bucket layout ---------------------------------------------------------

TEST(LatencyHist, BucketBoundariesAreExact) {
    // Values below 2^LAT_SUB_BITS are bucketed exactly.
    for (std::uint64_t v = 0; v < (1u << LAT_SUB_BITS); ++v) {
        EXPECT_EQ(lat_bucket_of(v), static_cast<int>(v)) << "v=" << v;
        EXPECT_EQ(lat_bucket_lo(static_cast<int>(v)), v);
        EXPECT_EQ(lat_bucket_hi(static_cast<int>(v)), v + 1);
    }
    // Every bucket's [lo, hi) maps back to itself at both edges; buckets
    // tile the value axis with no gaps (each hi is the next lo).
    for (int i = 0; i < LAT_BUCKETS - 1; ++i) {
        const std::uint64_t lo = lat_bucket_lo(i);
        const std::uint64_t hi = lat_bucket_hi(i);
        EXPECT_LT(lo, hi) << "bucket " << i;
        EXPECT_EQ(lat_bucket_of(lo), i) << "bucket " << i;
        EXPECT_EQ(lat_bucket_of(hi - 1), i) << "bucket " << i;
        EXPECT_EQ(lat_bucket_hi(i), lat_bucket_lo(i + 1))
            << "gap after bucket " << i;
    }
    // Relative bucket width stays within the design bound (12.5%) past
    // the exact range.
    for (int i = (1 << LAT_SUB_BITS); i < LAT_BUCKETS - 1; ++i) {
        const double lo = static_cast<double>(lat_bucket_lo(i));
        const double hi = static_cast<double>(lat_bucket_hi(i));
        EXPECT_LE((hi - lo) / lo, 0.125 + 1e-9) << "bucket " << i;
    }
}

TEST(LatencyHist, OverflowClampsToLastBucket) {
    const int last = LAT_BUCKETS - 1;
    EXPECT_EQ(lat_bucket_of(lat_bucket_lo(last)), last);
    EXPECT_EQ(lat_bucket_of(~std::uint64_t{0}), last);
    EXPECT_EQ(lat_bucket_of(std::uint64_t{1} << 63), last);
    // The overflow bucket is unbounded above.
    EXPECT_EQ(lat_bucket_hi(last), ~std::uint64_t{0});
}

// ---- merge algebra ---------------------------------------------------------

lat_summary random_summary(std::uint64_t seed, int samples) {
    prng rng(seed);
    lat_hist h;
    for (int i = 0; i < samples; ++i) {
        // Spread across ~6 decades so many buckets are live.
        const std::uint64_t ns = 1 + rng.next(1u << (5 + rng.next(25)));
        h.record(ns);
    }
    lat_summary s;
    s.add(h);
    return s;
}

bool summaries_equal(const lat_summary& a, const lat_summary& b) {
    return a.count == b.count && a.max_ns == b.max_ns &&
           a.buckets == b.buckets;
}

TEST(LatencyHist, MergeIsAssociativeAndCommutative) {
    const lat_summary a = random_summary(1, 500);
    const lat_summary b = random_summary(2, 300);
    const lat_summary c = random_summary(3, 700);

    lat_summary ab_c = a;
    ab_c.add(b);
    ab_c.add(c);
    lat_summary a_bc = b;
    a_bc.add(c);
    a_bc.add(a);
    lat_summary cba = c;
    cba.add(b);
    cba.add(a);

    EXPECT_TRUE(summaries_equal(ab_c, a_bc));
    EXPECT_TRUE(summaries_equal(ab_c, cba));
    EXPECT_EQ(ab_c.count, a.count + b.count + c.count);
}

TEST(LatencyHist, DeltaUndoesAdd) {
    const lat_summary prev = random_summary(4, 400);
    lat_summary cur = prev;
    const lat_summary fresh = random_summary(5, 250);
    cur.add(fresh);
    const lat_summary d = lat_summary::delta(cur, prev);
    EXPECT_EQ(d.count, fresh.count);
    EXPECT_EQ(d.buckets, fresh.buckets);
    // max is cumulative, not differencable: delta carries cur's max.
    EXPECT_EQ(d.max_ns, cur.max_ns);
}

// ---- percentiles -----------------------------------------------------------

TEST(LatencyHist, PercentilesTrackSortedOracle) {
    prng rng(42);
    lat_hist h;
    std::vector<std::uint64_t> oracle;
    for (int i = 0; i < 20000; ++i) {
        // Log-uniform-ish draw over [1, ~1e6) ns.
        const std::uint64_t ns = 1 + rng.next(1u << (2 + rng.next(18)));
        h.record(ns);
        oracle.push_back(ns);
    }
    std::sort(oracle.begin(), oracle.end());
    lat_summary s;
    s.add(h);
    ASSERT_EQ(s.count, oracle.size());

    for (double q : {0.5, 0.9, 0.99, 0.999}) {
        const std::uint64_t est = s.percentile(q);
        const std::size_t rank = static_cast<std::size_t>(
            std::ceil(q * static_cast<double>(oracle.size())));
        const std::uint64_t exact = oracle[rank - 1];
        // The estimate must land within the bucket resolution (<= 12.5%
        // relative width) of the exact order statistic.
        EXPECT_LE(est, exact + exact / 7 + 1) << "q=" << q;
        EXPECT_GE(est + est / 7 + 1, exact) << "q=" << q;
    }
    // Degenerate quantiles stay in range.
    EXPECT_LE(s.percentile(1.0), s.max_ns);
    EXPECT_GT(s.percentile(0.0), 0u);
    // Empty summary yields 0.
    EXPECT_EQ(lat_summary{}.percentile(0.99), 0u);
}

TEST(LatencyHist, PercentileClampsToRecordedMax) {
    lat_hist h;
    h.record(1000);
    lat_summary s;
    s.add(h);
    // One sample: every quantile is that sample's bucket, capped at the
    // exact recorded max.
    EXPECT_EQ(s.percentile(0.5), s.percentile(0.999));
    EXPECT_LE(s.percentile(0.999), s.max_ns);
    EXPECT_EQ(s.max_ns, 1000u);
}

// ---- clock -----------------------------------------------------------------

TEST(LatencyClock, CalibrationTracksWallClock) {
    const std::string src = lat_clock::source_name();
    EXPECT_TRUE(src == "tsc" || src == "steady_clock") << src;

    const auto w0 = std::chrono::steady_clock::now();
    const std::uint64_t t0 = lat_clock::now();
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    const std::uint64_t t1 = lat_clock::now();
    const auto w1 = std::chrono::steady_clock::now();

    const std::uint64_t ns = lat_clock::to_nanos(t1 - t0);
    const std::uint64_t wall = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(w1 - w0)
            .count());
    // The calibrated TSC (or the steady fallback) must agree with the
    // wall clock to well within 2x on a 50ms sleep -- calibration bugs
    // (wrong shift, wrong frequency) miss by orders of magnitude.
    EXPECT_GT(ns, wall / 2);
    EXPECT_LT(ns, wall * 2);
    EXPECT_GT(ns, 20u * 1000 * 1000);   // > 20ms
    EXPECT_LT(ns, 1000u * 1000 * 1000); // < 1s
}

// ---- recorder + sampling gate ----------------------------------------------

TEST(LatencyRecorder, ArmHonorsSamplingPeriod) {
    harness::op_latency_recorder rec;
    rec.set_sample_every(4);
    int armed = 0;
    for (int i = 0; i < 100; ++i) {
        if (rec.arm()) ++armed;
    }
    EXPECT_EQ(armed, 25);

    rec.set_sample_every(0);
    for (int i = 0; i < 10; ++i) EXPECT_FALSE(rec.arm());

    rec.set_sample_every(1);
    for (int i = 0; i < 10; ++i) EXPECT_TRUE(rec.arm());
}

TEST(LatencyRecorder, RecordsPerOpKind) {
    harness::op_latency_recorder rec;
    rec.set_sample_every(1);
    rec.record(harness::op_kind::insert, 100);
    rec.record(harness::op_kind::insert, 200);
    rec.record(harness::op_kind::contains, 50);
    lat_summary ins;
    ins.add(rec.hist(harness::op_kind::insert));
    lat_summary con;
    con.add(rec.hist(harness::op_kind::contains));
    lat_summary era;
    era.add(rec.hist(harness::op_kind::erase));
    EXPECT_EQ(ins.count, 2u);
    EXPECT_EQ(ins.max_ns, 200u);
    EXPECT_EQ(con.count, 1u);
    EXPECT_EQ(era.count, 0u);
    rec.clear();
    lat_summary cleared;
    cleared.add(rec.hist(harness::op_kind::insert));
    EXPECT_EQ(cleared.count, 0u);
}

// ---- stall attribution -----------------------------------------------------

TEST(StallAttribution, DebugStatsAccumulatesPerSite) {
    debug_stats stats;
    stats.stall(0, stall_site::rotation, 1000);
    stats.stall(1, stall_site::rotation, 3000);
    stats.stall(0, stall_site::neutralize, 500);

    const lat_summary rot = stats.stall_summary(stall_site::rotation);
    EXPECT_EQ(rot.count, 2u);
    EXPECT_EQ(rot.max_ns, 3000u);
    const lat_summary neu = stats.stall_summary(stall_site::neutralize);
    EXPECT_EQ(neu.count, 1u);
    EXPECT_EQ(stats.stall_summary(stall_site::arena).count, 0u);

    stats.clear();
    EXPECT_EQ(stats.stall_summary(stall_site::rotation).count, 0u);
}

TEST(StallAttribution, StallScopeRecordsElapsedTime) {
    debug_stats stats;
    {
        stall_scope scope(&stats, 0, stall_site::scan_free);
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    const lat_summary s = stats.stall_summary(stall_site::scan_free);
    ASSERT_EQ(s.count, 1u);
    EXPECT_GE(s.max_ns, 1u * 1000 * 1000);  // slept >= ~2ms
    // Null stats: the scope is inert (the reclaimers' stats_ may be null).
    { stall_scope inert(nullptr, 0, stall_site::scan_free); }
}

// ---- end-to-end through the harness ----------------------------------------

TEST(LatencyTrial, SamplingOnPopulatesLatencyResult) {
    using mgr_t = testutil::bst_mgr<reclaim::reclaim_debra>;
    mgr_t mgr(2, testutil::fast_config<mgr_t>());
    ds::ellen_bst<testutil::key_t, testutil::val_t, mgr_t> bst(mgr);
    harness::workload_config cfg;
    cfg.num_threads = 2;
    cfg.key_range = 256;
    cfg.trial_ms = 80;
    cfg.lat_sample = 1;  // time every op: counts must be substantial
    const auto res = harness::run_trial(bst, mgr, cfg);
    EXPECT_GT(res.total_ops, 0);
    EXPECT_EQ(res.latency.sample_every, 1);
    EXPECT_EQ(res.latency.clock, lat_clock::source_name());
    // Every op was timed, so the merged total matches the op count.
    EXPECT_EQ(res.latency.total.count,
              static_cast<std::uint64_t>(res.total_ops));
    lat_summary per_kind;
    for (const auto& s : res.latency.ops) per_kind.add(s);
    EXPECT_EQ(per_kind.count, res.latency.total.count);
    EXPECT_GT(res.latency.total.percentile(0.5), 0u);
    EXPECT_GE(res.latency.total.max_ns,
              res.latency.total.percentile(0.999));
}

TEST(LatencyTrial, SamplingOffRecordsNothing) {
    using mgr_t = testutil::bst_mgr<reclaim::reclaim_debra>;
    mgr_t mgr(2, testutil::fast_config<mgr_t>());
    ds::ellen_bst<testutil::key_t, testutil::val_t, mgr_t> bst(mgr);
    harness::workload_config cfg;
    cfg.num_threads = 2;
    cfg.key_range = 256;
    cfg.trial_ms = 40;
    cfg.lat_sample = 0;
    const auto res = harness::run_trial(bst, mgr, cfg);
    EXPECT_GT(res.total_ops, 0);
    EXPECT_EQ(res.latency.sample_every, 0);
    EXPECT_EQ(res.latency.total.count, 0u);
    for (const auto& s : res.latency.ops) EXPECT_EQ(s.count, 0u);
}

}  // namespace
}  // namespace smr
