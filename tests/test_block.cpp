// Tests for fixed-capacity record blocks (src/mem/block.h).
#include <gtest/gtest.h>

#include "mem/block.h"

namespace smr::mem {
namespace {

struct rec {
    long v;
};

TEST(Block, StartsEmpty) {
    block<rec, 4> b;
    EXPECT_TRUE(b.empty());
    EXPECT_FALSE(b.full());
    EXPECT_EQ(b.size, 0);
    EXPECT_EQ(b.next, nullptr);
}

TEST(Block, PushPopLifo) {
    block<rec, 4> b;
    rec r1{1}, r2{2}, r3{3};
    b.push(&r1);
    b.push(&r2);
    b.push(&r3);
    EXPECT_EQ(b.size, 3);
    EXPECT_EQ(b.pop(), &r3);
    EXPECT_EQ(b.pop(), &r2);
    EXPECT_EQ(b.pop(), &r1);
    EXPECT_TRUE(b.empty());
}

TEST(Block, FullAtCapacity) {
    block<rec, 3> b;
    rec r{0};
    b.push(&r);
    b.push(&r);
    EXPECT_FALSE(b.full());
    b.push(&r);
    EXPECT_TRUE(b.full());
    EXPECT_EQ(b.capacity, 3);
}

TEST(Block, DefaultCapacityMatchesPaper) {
    EXPECT_EQ((block<rec>::capacity), 256);
    EXPECT_EQ(DEFAULT_BLOCK_SIZE, 256);
}

TEST(Block, RefillAfterDrain) {
    block<rec, 2> b;
    rec r1{1}, r2{2};
    b.push(&r1);
    b.push(&r2);
    EXPECT_EQ(b.pop(), &r2);
    EXPECT_EQ(b.pop(), &r1);
    b.push(&r2);
    EXPECT_EQ(b.pop(), &r2);
}

TEST(BlockChain, DefaultIsEmpty) {
    block_chain<rec, 4> c;
    EXPECT_TRUE(c.empty());
    EXPECT_EQ(c.head, nullptr);
    EXPECT_EQ(c.tail, nullptr);
    EXPECT_EQ(c.count, 0);
}

TEST(BlockChain, NonEmptyWhenHeadSet) {
    block<rec, 4> b;
    block_chain<rec, 4> c;
    c.head = &b;
    c.tail = &b;
    c.count = 1;
    EXPECT_FALSE(c.empty());
}

}  // namespace
}  // namespace smr::mem
