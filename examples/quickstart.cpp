// quickstart -- the smallest complete program using the library, written
// against the RAII guard API (the canonical way to use it).
//
// Three ideas, three types:
//
//   1. record_manager composes {reclamation scheme, allocator, pool} over
//      the record types of a data structure. One template argument swaps
//      the scheme -- nothing else changes.
//   2. thread_handle registers the calling thread (RAII): construction
//      picks a free tid and runs the scheme's per-thread setup, the
//      destructor deregisters. No tids are ever invented by hand.
//   3. accessor (minted by mgr.access(handle)) binds the registration and
//      is what data structure operations take: tree.insert(acc, k, v).
//      Inside the structures, op_guard and guard_ptr pair every
//      quiescence bracket and per-access protection automatically.
//
//   $ ./quickstart
#include <cstdio>
#include <thread>

#include "ds/ellen_bst.h"
#include "recordmgr/record_manager.h"
#include "reclaim/reclaimer_debra.h"

using key_type = long long;
using val_type = long long;

// One line selects {reclaimer, allocator, pool} for the tree's two record
// types. Try reclaim::reclaim_debra_plus, reclaim_hp, reclaim_he,
// reclaim_ibr, reclaim_ebr, or reclaim_none here -- nothing else changes.
using manager_t =
    smr::record_manager<smr::reclaim::reclaim_debra,  // reclamation scheme
                        smr::alloc_malloc,            // allocator policy
                        smr::pool_shared,             // object pool policy
                        smr::ds::bst_node<key_type, val_type>,
                        smr::ds::bst_info<key_type, val_type>>;
using tree_t = smr::ds::ellen_bst<key_type, val_type, manager_t>;

int main() {
    manager_t mgr(/*num_threads=*/2);
    tree_t tree(mgr);

    std::thread worker([&] {
        // RAII registration: auto-assigned tid, deregistered on scope exit.
        auto handle = mgr.register_thread();
        auto acc = mgr.access(handle);
        for (key_type k = 0; k < 10000; ++k) tree.insert(acc, k, k * 2);
        for (key_type k = 0; k < 10000; k += 2) tree.erase(acc, k);
    });

    long long found = 0;
    {
        auto handle = mgr.register_thread();
        auto acc = mgr.access(handle);
        for (int round = 0; round < 200; ++round) {
            for (key_type k = 0; k < 100; ++k) {
                if (tree.contains(acc, k)) ++found;
            }
        }
    }
    worker.join();

    std::printf("tree size:            %lld (odd keys below 10000)\n",
                tree.size_slow());
    std::printf("searches that hit:    %lld\n", found);
    std::printf("scheme:               %s\n", manager_t::scheme_name);
    std::printf("records retired:      %llu\n",
                static_cast<unsigned long long>(
                    mgr.stats().total(smr::stat::records_retired)));
    std::printf("records reclaimed:    %llu\n",
                static_cast<unsigned long long>(
                    mgr.stats().total(smr::stat::records_pooled)));
    std::printf("records reused:       %llu\n",
                static_cast<unsigned long long>(
                    mgr.stats().total(smr::stat::records_reused)));
    std::printf("still in limbo:       %lld\n", mgr.total_limbo_all_types());
    return tree.size_slow() == 5000 ? 0 : 1;
}
