// quickstart -- the smallest complete program using the library.
//
// Builds a lock-free binary search tree whose memory is managed by DEBRA,
// runs a few operations from two threads, and prints the reclamation
// statistics. Swapping the reclamation scheme, allocator, or object pool
// is the single `using manager_t = ...` line (paper Section 6).
//
//   $ ./quickstart
#include <cstdio>
#include <thread>

#include "ds/ellen_bst.h"
#include "recordmgr/record_manager.h"
#include "reclaim/reclaimer_debra.h"

using key_type = long long;
using val_type = long long;

// One line selects {reclaimer, allocator, pool} for the tree's two record
// types. Try reclaim::reclaim_debra_plus, reclaim_hp, reclaim_ebr, or
// reclaim_none here -- nothing else changes.
using manager_t =
    smr::record_manager<smr::reclaim::reclaim_debra,  // reclamation scheme
                        smr::alloc_malloc,            // allocator policy
                        smr::pool_shared,             // object pool policy
                        smr::ds::bst_node<key_type, val_type>,
                        smr::ds::bst_info<key_type, val_type>>;
using tree_t = smr::ds::ellen_bst<key_type, val_type, manager_t>;

int main() {
    manager_t mgr(/*num_threads=*/2);
    tree_t tree(mgr);

    std::thread worker([&] {
        mgr.init_thread(1);  // every thread registers once, with its tid
        for (key_type k = 0; k < 10000; ++k) tree.insert(1, k, k * 2);
        for (key_type k = 0; k < 10000; k += 2) tree.erase(1, k);
        mgr.deinit_thread(1);
    });

    mgr.init_thread(0);
    long long found = 0;
    for (int round = 0; round < 200; ++round) {
        for (key_type k = 0; k < 100; ++k) {
            if (tree.contains(0, k)) ++found;
        }
    }
    mgr.deinit_thread(0);
    worker.join();

    std::printf("tree size:            %lld (odd keys below 10000)\n",
                tree.size_slow());
    std::printf("searches that hit:    %lld\n", found);
    std::printf("scheme:               %s\n", manager_t::scheme_name);
    std::printf("records retired:      %llu\n",
                static_cast<unsigned long long>(
                    mgr.stats().total(smr::stat::records_retired)));
    std::printf("records reclaimed:    %llu\n",
                static_cast<unsigned long long>(
                    mgr.stats().total(smr::stat::records_pooled)));
    std::printf("records reused:       %llu\n",
                static_cast<unsigned long long>(
                    mgr.stats().total(smr::stat::records_reused)));
    std::printf("still in limbo:       %lld\n", mgr.total_limbo_all_types());
    return tree.size_slow() == 5000 ? 0 : 1;
}
