// scheme_swap -- the paper's Section-6 modularity claim as a runnable
// demo: the same data structure code, templated over the Record Manager,
// is executed under seven different reclamation schemes by changing one
// template argument -- including the era family (Hazard Eras, 2GE-IBR)
// added on top of the paper's contenders, whose per-record era stamps the
// manager threads through invisibly. The example prints a mini-benchmark
// per scheme plus the compile-time traits that drive the conditional code
// paths.
//
//   $ ./scheme_swap
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "ds/ellen_bst.h"
#include "recordmgr/record_manager.h"
#include "reclaim/era/reclaimer_he.h"
#include "reclaim/era/reclaimer_ibr.h"
#include "reclaim/reclaimer_debra.h"
#include "reclaim/reclaimer_debra_plus.h"
#include "reclaim/reclaimer_hp.h"
#include "reclaim/reclaimer_none.h"
#include "util/prng.h"
#include "util/timing.h"

using key_type = long long;
using val_type = long long;

/// The "application": written once, against the record-manager interface.
/// It has no idea which reclamation scheme is underneath.
template <class Manager>
void churn_app(int threads, int ms) {
    Manager mgr(threads);
    smr::ds::ellen_bst<key_type, val_type, Manager> tree(mgr);

    std::vector<std::thread> workers;
    std::atomic<bool> stop{false};
    std::atomic<long long> ops{0};
    for (int t = 0; t < threads; ++t) {
        workers.emplace_back([&, t] {
            auto handle = mgr.register_thread();
            auto acc = mgr.access(handle);
            smr::prng rng(static_cast<std::uint64_t>(t) + 7);
            long long mine = 0;
            while (!stop.load(std::memory_order_acquire)) {
                const key_type k = static_cast<key_type>(rng.next(512));
                if (rng.chance_percent(50)) {
                    tree.insert(acc, k, k);
                } else {
                    tree.erase(acc, k);
                }
                ++mine;
            }
            ops.fetch_add(mine);
        });
    }
    smr::stopwatch timer;
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    stop.store(true, std::memory_order_release);
    for (auto& w : workers) w.join();

    std::printf(
        "%-8s  crash-recovery=%-5s per-access=%-5s  %7.3f Mops/s  "
        "retired=%-8llu reclaimed=%-8llu limbo=%lld\n",
        Manager::scheme_name,
        Manager::supports_crash_recovery ? "yes" : "no",
        Manager::per_access_protection ? "yes" : "no",
        ops.load() / timer.elapsed_seconds() / 1e6,
        static_cast<unsigned long long>(
            mgr.stats().total(smr::stat::records_retired)),
        static_cast<unsigned long long>(
            mgr.stats().total(smr::stat::records_pooled)),
        mgr.total_limbo_all_types());
}

template <class Scheme>
using mgr_for = smr::record_manager<Scheme, smr::alloc_malloc,
                                    smr::pool_shared,
                                    smr::ds::bst_node<key_type, val_type>,
                                    smr::ds::bst_info<key_type, val_type>>;

int main() {
    constexpr int THREADS = 3;
    constexpr int MS = 300;
    std::printf("one data structure, seven reclamation schemes "
                "(%d threads, %d ms each):\n\n",
                THREADS, MS);
    churn_app<mgr_for<smr::reclaim::reclaim_none>>(THREADS, MS);
    churn_app<mgr_for<smr::reclaim::reclaim_ebr>>(THREADS, MS);
    churn_app<mgr_for<smr::reclaim::reclaim_debra>>(THREADS, MS);
    churn_app<mgr_for<smr::reclaim::reclaim_debra_plus>>(THREADS, MS);
    churn_app<mgr_for<smr::reclaim::reclaim_hp>>(THREADS, MS);
    churn_app<mgr_for<smr::reclaim::reclaim_he>>(THREADS, MS);
    churn_app<mgr_for<smr::reclaim::reclaim_ibr>>(THREADS, MS);
    std::printf(
        "\nNote: 'none' leaks every retired record; the others recycle "
        "them.\nThe churn_app function is byte-for-byte identical in all "
        "seven runs.\n");
    return 0;
}
