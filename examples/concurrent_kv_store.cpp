// concurrent_kv_store -- a small but realistic application scenario: an
// in-memory key-value store with a mixed read/write workload and periodic
// point-in-time statistics, built on the skip list (ordered, lock-based
// updates, lock-free reads) with DEBRA reclamation.
//
// The intro of the paper motivates exactly this setting: a long-running
// service cannot leak every deleted node (None), and cannot afford a
// per-access protocol on its read path (HPs). DEBRA's per-operation
// bracketing costs two writes to one thread-local word.
//
//   $ ./concurrent_kv_store
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <utility>
#include <vector>

#include "ds/lazy_skiplist.h"
#include "recordmgr/record_manager.h"
#include "reclaim/reclaimer_debra.h"
#include "util/prng.h"

using key_type = long long;
using val_type = long long;
using manager_t =
    smr::record_manager<smr::reclaim::reclaim_debra, smr::alloc_malloc,
                        smr::pool_shared, smr::ds::skiplist_node<key_type, val_type>>;
using store_t = smr::ds::lazy_skiplist<key_type, val_type, manager_t>;

namespace {

/// put/get/del API over the skip list (insert-if-absent becomes upsert by
/// erase+insert; fine for a demo, not a linearizable upsert). Callers pass
/// the accessor of their thread_handle -- no tids anywhere.
struct kv_store {
    using accessor = manager_t::accessor_t;
    manager_t& mgr;
    store_t& skip;

    bool put(accessor acc, key_type k, val_type v) {
        skip.erase(acc, k);
        return skip.insert(acc, k, v);
    }
    std::optional<val_type> get(accessor acc, key_type k) {
        return skip.find(acc, k);
    }
    bool del(accessor acc, key_type k) {
        return skip.erase(acc, k).has_value();
    }
    /// Ordered range scan (ordered_set_like concept): visits the live
    /// keys in [lo, hi] ascending, concurrently with the writers.
    template <class Visitor>
    long long scan(accessor acc, key_type lo, key_type hi, Visitor&& vis) {
        return skip.range_query(acc, lo, hi, std::forward<Visitor>(vis));
    }
};

}  // namespace

int main() {
    constexpr int THREADS = 4;
    constexpr key_type KEYS = 4096;
    manager_t mgr(THREADS);
    store_t skip(mgr);
    kv_store store{mgr, skip};

    std::atomic<bool> stop{false};
    std::atomic<long long> gets{0}, puts{0}, dels{0};

    std::vector<std::thread> workers;
    for (int t = 0; t < THREADS - 1; ++t) {
        workers.emplace_back([&, t] {
            auto handle = mgr.register_thread();
            auto acc = mgr.access(handle);
            smr::prng rng(static_cast<std::uint64_t>(t) * 31 + 1);
            while (!stop.load(std::memory_order_acquire)) {
                const key_type k = static_cast<key_type>(rng.next(KEYS));
                const auto dice = rng.next(100);
                if (dice < 70) {
                    (void)store.get(acc, k);
                    gets.fetch_add(1, std::memory_order_relaxed);
                } else if (dice < 90) {
                    store.put(acc, k, k * 10);
                    puts.fetch_add(1, std::memory_order_relaxed);
                } else {
                    store.del(acc, k);
                    dels.fetch_add(1, std::memory_order_relaxed);
                }
            }
        });
    }
    // A monitoring thread runs real range scans -- a reader whose scans
    // must never touch freed memory, and whose visitor must see the keys
    // of each window strictly ascending even under concurrent churn.
    std::atomic<bool> scan_order_ok{true};
    workers.emplace_back([&] {
        auto handle = mgr.register_thread();
        auto acc = mgr.access(handle);
        for (int sample = 0; sample < 5; ++sample) {
            std::this_thread::sleep_for(std::chrono::milliseconds(100));
            const key_type lo = (KEYS / 5) * sample;
            const key_type hi = lo + KEYS / 5 - 1;
            key_type last = lo - 1;
            const long long n =
                store.scan(acc, lo, hi, [&](const key_type& k, const val_type& v) {
                    if (k <= last || v != k * 10) {
                        scan_order_ok.store(false, std::memory_order_relaxed);
                    }
                    last = k;
                    return true;
                });
            std::printf("  [monitor] sample %d: %lld live keys in "
                        "[%lld, %lld]\n",
                        sample + 1, n, lo, hi);
        }
        stop.store(true, std::memory_order_release);
    });
    for (auto& w : workers) w.join();

    if (!scan_order_ok.load()) {
        std::printf("FAIL: a range scan saw out-of-order or corrupt keys\n");
        return 1;
    }

    std::printf("\nworkload: %lld gets, %lld puts, %lld dels\n", gets.load(),
                puts.load(), dels.load());
    std::printf("final size: %lld keys; structure valid: %s\n",
                skip.size_slow(), skip.validate_structure() ? "yes" : "NO");
    std::printf("retired: %llu  reclaimed: %llu  reused: %llu  limbo: %lld\n",
                static_cast<unsigned long long>(
                    mgr.stats().total(smr::stat::records_retired)),
                static_cast<unsigned long long>(
                    mgr.stats().total(smr::stat::records_pooled)),
                static_cast<unsigned long long>(
                    mgr.stats().total(smr::stat::records_reused)),
                mgr.total_limbo_all_types());
    return skip.validate_structure() ? 0 : 1;
}
