// task_pipeline -- a two-stage producer/consumer pipeline on the
// Michael-Scott queue, with a Treiber stack recycling "task" buffers.
//
// Queues are the structure hazard pointers were invented for, and the
// scenario shows the Record Manager serving two different structures
// (queue + stack) over different record types from one coherent
// reclamation domain: one epoch, shared pools, one line to change the
// scheme for both.
//
//   $ ./task_pipeline
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "ds/ms_queue.h"
#include "ds/treiber_stack.h"
#include "recordmgr/record_manager.h"
#include "reclaim/reclaimer_debra.h"
#include "util/prng.h"

// One manager, two record types: queue nodes and stack nodes.
using manager_t =
    smr::record_manager<smr::reclaim::reclaim_debra, smr::alloc_malloc,
                        smr::pool_shared, smr::ds::queue_node<long>,
                        smr::ds::stack_node<long>>;

int main() {
    constexpr int PRODUCERS = 2;
    constexpr int CONSUMERS = 1;
    constexpr long TASKS_PER_PRODUCER = 200000;
    manager_t mgr(PRODUCERS + CONSUMERS);
    smr::ds::ms_queue<long, manager_t> work_queue(mgr);
    smr::ds::treiber_stack<long, manager_t> results(mgr);

    std::atomic<int> producers_left{PRODUCERS};
    std::atomic<long long> processed{0};
    std::vector<std::thread> threads;

    for (int p = 0; p < PRODUCERS; ++p) {
        threads.emplace_back([&, p] {
            auto handle = mgr.register_thread();
            auto acc = mgr.access(handle);
            for (long i = 0; i < TASKS_PER_PRODUCER; ++i) {
                work_queue.enqueue(acc, p * TASKS_PER_PRODUCER + i);
            }
            producers_left.fetch_sub(1);
        });
    }
    for (int c = 0; c < CONSUMERS; ++c) {
        threads.emplace_back([&] {
            auto handle = mgr.register_thread();
            auto acc = mgr.access(handle);
            for (;;) {
                auto task = work_queue.dequeue(acc);
                if (task) {
                    // "Process" the task; push a digest onto the results.
                    if ((*task & 0xfff) == 0) results.push(acc, *task);
                    processed.fetch_add(1, std::memory_order_relaxed);
                } else if (producers_left.load() == 0) {
                    if (!work_queue.dequeue(acc)) break;
                } else {
                    std::this_thread::yield();
                }
            }
        });
    }
    for (auto& t : threads) t.join();

    std::printf("tasks processed:      %lld / %lld\n", processed.load(),
                static_cast<long long>(PRODUCERS) * TASKS_PER_PRODUCER);
    std::printf("digests collected:    %lld\n", results.size_slow());
    std::printf("queue drained:        %s\n",
                work_queue.empty() ? "yes" : "NO");
    std::printf("queue nodes retired:  %llu, reclaimed: %llu, reused: %llu\n",
                static_cast<unsigned long long>(
                    mgr.stats().total(smr::stat::records_retired)),
                static_cast<unsigned long long>(
                    mgr.stats().total(smr::stat::records_pooled)),
                static_cast<unsigned long long>(
                    mgr.stats().total(smr::stat::records_reused)));
    const bool ok = processed.load() ==
                    static_cast<long long>(PRODUCERS) * TASKS_PER_PRODUCER;
    return ok ? 0 : 1;
}
