// fault_tolerance -- DEBRA+'s neutralization live, side by side with
// DEBRA's failure mode (paper Sections 1, 5 and Figure 9).
//
// One thread repeatedly stalls *inside* an operation (non-quiescent),
// exactly like a process that was preempted or crashed mid-operation.
// Meanwhile worker threads churn a lock-free BST:
//
//   * under DEBRA, the stalled thread pins the epoch: every retired node
//     accumulates in limbo bags and memory grows with the churn;
//   * under DEBRA+, the workers *neutralize* the straggler with a POSIX
//     signal; it longjmps to its recovery path, the epoch advances, and
//     the limbo footprint stays flat.
//
//   $ ./fault_tolerance
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "ds/ellen_bst.h"
#include "recordmgr/record_manager.h"
#include "reclaim/reclaimer_debra.h"
#include "reclaim/reclaimer_debra_plus.h"
#include "util/prng.h"

using key_type = long long;
using val_type = long long;

template <class Manager>
void run_scenario(const char* name) {
    constexpr int WORKERS = 2;
    constexpr int STALLER = WORKERS;  // tid of the stalling thread
    Manager mgr(WORKERS + 1);
    smr::ds::ellen_bst<key_type, val_type, Manager> tree(mgr);

    std::atomic<bool> stop{false};
    std::atomic<long long> peak_limbo{0};

    std::vector<std::thread> threads;
    for (int t = 0; t < WORKERS; ++t) {
        threads.emplace_back([&, t] {
            auto handle = mgr.register_thread(t);
            auto acc = mgr.access(handle);
            smr::prng rng(static_cast<std::uint64_t>(t) + 99);
            while (!stop.load(std::memory_order_acquire)) {
                const key_type k = static_cast<key_type>(rng.next(256));
                if (rng.chance_percent(50)) {
                    tree.insert(acc, k, k);
                } else {
                    tree.erase(acc, k);
                }
                const long long limbo = mgr.total_limbo_all_types();
                long long prev = peak_limbo.load(std::memory_order_relaxed);
                while (limbo > prev &&
                       !peak_limbo.compare_exchange_weak(prev, limbo)) {
                }
            }
        });
    }
    // The straggler: stalls non-quiescently, over and over. run_guarded
    // gives it a recovery point; under DEBRA+ the signal lands here.
    std::atomic<long long> recoveries{0};
    threads.emplace_back([&] {
        auto handle = mgr.register_thread(STALLER);
        auto acc = mgr.access(handle);
        while (!stop.load(std::memory_order_acquire)) {
            acc.run_guarded(
                [&] {  // non-quiescent ("mid-operation")...
                    const auto until = std::chrono::steady_clock::now() +
                                       std::chrono::milliseconds(50);
                    while (std::chrono::steady_clock::now() < until &&
                           !stop.load(std::memory_order_acquire)) {
                        std::this_thread::yield();  // ...and going nowhere
                    }
                    return true;
                },
                [&] {
                    recoveries.fetch_add(1);  // neutralized and recovered
                    return true;
                });
        }
    });

    std::this_thread::sleep_for(std::chrono::milliseconds(600));
    stop.store(true, std::memory_order_release);
    for (auto& th : threads) th.join();

    std::printf("%-7s  peak limbo: %7lld records   neutralizations: %4llu   "
                "recoveries: %4lld   reclaimed: %llu\n",
                name, peak_limbo.load(),
                static_cast<unsigned long long>(mgr.stats().total(
                    smr::stat::neutralize_signals_sent)),
                recoveries.load(),
                static_cast<unsigned long long>(
                    mgr.stats().total(smr::stat::records_pooled)));
}

int main() {
    std::printf("two workers churn a BST while a third thread keeps "
                "stalling mid-operation:\n\n");
    using debra_mgr =
        smr::record_manager<smr::reclaim::reclaim_debra, smr::alloc_malloc,
                            smr::pool_shared, smr::ds::bst_node<key_type, val_type>,
                            smr::ds::bst_info<key_type, val_type>>;
    using plus_mgr = smr::record_manager<smr::reclaim::reclaim_debra_plus,
                                         smr::alloc_malloc, smr::pool_shared,
                                         smr::ds::bst_node<key_type, val_type>,
                                         smr::ds::bst_info<key_type, val_type>>;
    run_scenario<debra_mgr>("DEBRA");
    run_scenario<plus_mgr>("DEBRA+");
    std::printf(
        "\nDEBRA's limbo grows as long as the straggler stalls; DEBRA+ "
        "signals it\n(paper Section 5) and keeps the footprint bounded -- "
        "the Figure 9 result.\n");
    return 0;
}
